package scan

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzScanVsJSON differentially tests the NDJSON tokenizer against
// encoding/json. The tokenizer is deliberately lazier than the oracle — it
// skips unrequested values structurally and never validates what it does
// not return — so the contract is one-directional: whenever the oracle
// accepts every line of the input as a JSON object containing the
// requested keys, the tokenizer must also accept it and return byte- and
// value-identical fields. Inputs the oracle rejects are skipped (the
// tokenizer may accept a superset). Lines with duplicate keys are skipped
// too: the tokenizer keeps the first occurrence (it stops reading the
// moment it has what it needs) while encoding/json keeps the last.
func FuzzScanVsJSON(f *testing.F) {
	f.Add(`{"a":1,"b":2}` + "\n")
	f.Add(`{"a":1,"b":2}` + "\r\n" + `{"b":-3,"a":"x"}` + "\r\n") // CRLF + key order
	f.Add(`{"a":"q\"uo\\te","b":"A😀"}` + "\n")                    // escapes
	f.Add(`{"a":{"n":[1,{"d":"}"}]},"b":[[]]}` + "\n")            // nested composites
	f.Add(`{ "a" : 1.5e-3 , "b" : null }` + "\n")                 // whitespace
	f.Add(`{"a":true,"b":false,"c":0}` + "\n")                    // extra keys
	f.Add(`{"c":"skipped","a":0,"b":""}` + "\n")                  // unrequested first
	f.Add(`{"a":1,"b":2}`)                                        // no trailing newline

	f.Fuzz(func(t *testing.T, input string) {
		if input == "" || len(input) > 1<<16 {
			t.Skip()
		}
		lines := splitFuzzLines(input)
		if len(lines) == 0 {
			t.Skip()
		}
		type row struct{ a, b json.RawMessage }
		var want []row
		for _, l := range lines {
			vals, ok := oracleObject(l)
			if !ok {
				t.Skip() // oracle rejects (or duplicate keys): out of contract
			}
			av, aok := vals["a"]
			bv, bok := vals["b"]
			if !aok || !bok {
				t.Skip()
			}
			want = append(want, row{a: av, b: bv})
		}

		path := filepath.Join(t.TempDir(), "fuzz.ndjson")
		if err := os.WriteFile(path, []byte(input), 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path, Options{Format: FormatNDJSON, FieldNames: []string{"a", "b"}, Workers: 1, ChunkSize: 32})
		if err != nil {
			t.Fatal(err)
		}
		var got []row
		err = s.ScanColumns([]int{0, 1}, func(rowID int64, fields []FieldRef) error {
			got = append(got, row{
				a: append(json.RawMessage(nil), fields[0].Bytes...),
				b: append(json.RawMessage(nil), fields[1].Bytes...),
			})
			return nil
		}, nil)
		if err != nil {
			t.Fatalf("tokenizer rejected oracle-clean input %q: %v", input, err)
		}
		if len(got) != len(want) {
			t.Fatalf("input %q: tokenizer saw %d rows, oracle %d", input, len(got), len(want))
		}
		for i := range got {
			compareToken(t, input, i, "a", got[i].a, want[i].a)
			compareToken(t, input, i, "b", got[i].b, want[i].b)
		}
	})
}

// compareToken checks the tokenizer's raw field token against the oracle's
// RawMessage, byte-wise, and — for string tokens — that UnquoteJSON agrees
// with encoding/json's decoded value.
func compareToken(t *testing.T, input string, i int, key string, got, want json.RawMessage) {
	t.Helper()
	if !bytes.Equal(got, want) {
		t.Fatalf("input %q row %d key %s: token %q, oracle %q", input, i, key, got, want)
	}
	if len(got) > 0 && got[0] == '"' {
		var wantS string
		if err := json.Unmarshal(want, &wantS); err != nil {
			return
		}
		gotS, err := UnquoteJSON(got)
		if err != nil {
			t.Fatalf("input %q row %d key %s: UnquoteJSON(%q): %v", input, i, key, got, err)
		}
		if gotS != wantS {
			t.Fatalf("input %q row %d key %s: unquoted %q, oracle %q", input, i, key, gotS, wantS)
		}
	}
}

// oracleObject decodes one line as a strict single JSON object via
// encoding/json, returning its raw values by key. ok is false when the
// line is not exactly one valid object (json.Unmarshal rejects trailing
// content itself) or repeats a key.
func oracleObject(line []byte) (map[string]json.RawMessage, bool) {
	var vals map[string]json.RawMessage
	if err := json.Unmarshal(line, &vals); err != nil || vals == nil {
		return nil, false
	}
	// Token walk to reject duplicate keys (Unmarshal keeps the last, the
	// lazy tokenizer the first).
	dec := json.NewDecoder(bytes.NewReader(line))
	if tok, err := dec.Token(); err != nil {
		return nil, false
	} else if d, _ := tok.(json.Delim); d != '{' {
		return nil, false
	}
	seen := map[string]bool{}
	for dec.More() {
		kt, err := dec.Token()
		if err != nil {
			return nil, false
		}
		k, _ := kt.(string)
		if seen[k] {
			return nil, false
		}
		seen[k] = true
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return nil, false
		}
	}
	return vals, true
}

func splitFuzzLines(input string) [][]byte {
	var lines [][]byte
	data := []byte(input)
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		var line []byte
		if i < 0 {
			line, data = data, nil
		} else {
			line, data = data[:i], data[i+1:]
		}
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) == 0 && len(data) == 0 {
			break // trailing newline, not an empty row
		}
		lines = append(lines, line)
	}
	return lines
}
