package scan

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Tests for the StartOffset/MaxOffset scan window, the primitive under
// incremental tail extension: re-scan exactly the bytes appended after a
// prefix-stable growth, numbering rows from 0 at the window start and
// reporting absolute byte offsets.

func writeCSVTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func collectWindow(t *testing.T, path string, opts Options) (rows []string, ids []int64, offs []int64) {
	t.Helper()
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	err = s.ScanColumns([]int{0}, func(rowID int64, fields []FieldRef) error {
		rows = append(rows, string(fields[0].Bytes))
		ids = append(ids, rowID)
		offs = append(offs, fields[0].Offset)
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rows, ids, offs
}

func TestScanWindowCSV(t *testing.T) {
	// Four 6-byte rows at offsets 0, 6, 12, 18.
	path := writeCSVTemp(t, "10,20\n30,40\n50,60\n70,80\n")

	// StartOffset skips the validated prefix; row ids restart at 0 and
	// offsets stay absolute (they feed the positional map).
	rows, ids, offs := collectWindow(t, path, Options{StartOffset: 12})
	if !reflect.DeepEqual(rows, []string{"50", "70"}) {
		t.Errorf("rows from offset 12 = %v", rows)
	}
	if !reflect.DeepEqual(ids, []int64{0, 1}) {
		t.Errorf("row ids = %v, want renumbered from 0", ids)
	}
	if !reflect.DeepEqual(offs, []int64{12, 18}) {
		t.Errorf("field offsets = %v, want absolute 12, 18", offs)
	}

	// MaxOffset caps the scan: bytes past it (a growth since the
	// signature was taken, or a half-written append) are invisible.
	rows, _, _ = collectWindow(t, path, Options{MaxOffset: 12})
	if !reflect.DeepEqual(rows, []string{"10", "30"}) {
		t.Errorf("rows capped at 12 = %v", rows)
	}

	// Both: exactly the appended window.
	rows, ids, _ = collectWindow(t, path, Options{StartOffset: 6, MaxOffset: 18})
	if !reflect.DeepEqual(rows, []string{"30", "50"}) || !reflect.DeepEqual(ids, []int64{0, 1}) {
		t.Errorf("window [6,18) = %v ids %v", rows, ids)
	}

	// An empty window scans nothing.
	rows, _, _ = collectWindow(t, path, Options{StartOffset: 24})
	if len(rows) != 0 {
		t.Errorf("window at EOF scanned %v", rows)
	}

	// NumRows counts only the window.
	s, err := Open(path, Options{StartOffset: 12})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.NumRows(); err != nil || n != 2 {
		t.Errorf("NumRows in window = %d, %v, want 2", n, err)
	}
}

func TestScanWindowNDJSON(t *testing.T) {
	input := `{"id":1,"v":10}
{"id":2,"v":20}
{"id":3,"v":30}
`
	path := filepath.Join(t.TempDir(), "data.ndjson")
	if err := os.WriteFile(path, []byte(input), 0o644); err != nil {
		t.Fatal(err)
	}
	// Second row starts at byte 16.
	opts := Options{Format: FormatNDJSON, FieldNames: []string{"id", "v"}, Workers: 1, StartOffset: 16}
	rows, ids, _ := collectWindow(t, path, opts)
	if !reflect.DeepEqual(rows, []string{"2", "3"}) || !reflect.DeepEqual(ids, []int64{0, 1}) {
		t.Errorf("ndjson window = %v ids %v", rows, ids)
	}
}
