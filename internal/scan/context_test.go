package scan

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nodb/internal/metrics"
)

// writeRows produces a CSV with n rows of two int columns and returns its
// path.
func writeRows(t *testing.T, n int) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, i*2)
	}
	path := filepath.Join(t.TempDir(), "rows.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScanCancelMidScan cancels the context from the row handler during
// the first chunk; the scan must abort at the next chunk boundary, having
// read well short of the whole file.
func TestScanCancelMidScan(t *testing.T) {
	const rows = 20000
	path := writeRows(t, rows)

	var c metrics.Counters
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Workers 1 pins the classic single-portion streaming pass: the test
	// asserts the chunk loop itself aborts mid-file, without the parallel
	// default's row-count pre-pass contributing reads of its own.
	s, err := Open(path, Options{Workers: 1, ChunkSize: 4096, Counters: &c, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}

	seen := 0
	err = s.ScanColumns([]int{0}, func(rowID int64, fields []FieldRef) error {
		seen++
		if seen == 1 {
			cancel()
		}
		return nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ScanColumns error = %v, want context.Canceled", err)
	}
	if seen == 0 {
		t.Fatal("scan aborted before tokenizing any row")
	}
	read := c.Snapshot().RawBytesRead
	if read >= s.Size() {
		t.Fatalf("scan read %d of %d bytes despite cancellation", read, s.Size())
	}
	if got := s.RowsScanned(); got >= rows {
		t.Fatalf("scan tokenized all %d rows despite cancellation", got)
	}
}

// TestScanPreCancelled verifies an already-cancelled context stops the
// scan before it reads anything.
func TestScanPreCancelled(t *testing.T) {
	path := writeRows(t, 100)

	var c metrics.Counters
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := Open(path, Options{Counters: &c, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	err = s.ScanColumns([]int{0}, func(rowID int64, fields []FieldRef) error {
		t.Error("handler called under cancelled context")
		return nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ScanColumns error = %v, want context.Canceled", err)
	}
	if read := c.Snapshot().RawBytesRead; read != 0 {
		t.Fatalf("pre-cancelled scan read %d bytes, want 0", read)
	}
}

// TestScanCancelParallelWorkers exercises cancellation with multiple
// portion workers: every worker must observe the cancelled context and the
// scan must return the context error, not hang.
func TestScanCancelParallelWorkers(t *testing.T) {
	const rows = 40000
	path := writeRows(t, rows)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := Open(path, Options{Workers: 4, ChunkSize: 4096, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	err = s.ScanColumns([]int{0}, func(rowID int64, fields []FieldRef) error {
		once.Do(cancel)
		return nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ScanColumns error = %v, want context.Canceled", err)
	}
	if got := s.RowsScanned(); got >= rows {
		t.Fatalf("scan tokenized all %d rows despite cancellation", got)
	}
}
