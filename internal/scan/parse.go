package scan

import (
	"fmt"
	"strconv"
)

// ParseInt64 converts a decimal field to int64 without allocating. It is
// the hot path of loading: every value brought from a flat file into the
// engine goes through it.
func ParseInt64(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("scan: empty integer field")
	}
	neg := false
	i := 0
	switch b[0] {
	case '-':
		neg = true
		i = 1
	case '+':
		i = 1
	}
	if i == len(b) {
		return 0, fmt.Errorf("scan: invalid integer %q", b)
	}
	var v uint64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("scan: invalid integer %q", b)
		}
		d := uint64(c - '0')
		if v > (1<<63-1)/10 {
			return 0, fmt.Errorf("scan: integer overflow %q", b)
		}
		v = v*10 + d
	}
	if neg {
		if v > 1<<63 {
			return 0, fmt.Errorf("scan: integer overflow %q", b)
		}
		return -int64(v), nil
	}
	if v > 1<<63-1 {
		return 0, fmt.Errorf("scan: integer overflow %q", b)
	}
	return int64(v), nil
}

// ParseFloat64 converts a field to float64. Unlike ParseInt64 it defers to
// strconv, converting via an unsafe-free string copy only on the slow path.
func ParseFloat64(b []byte) (float64, error) {
	f, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return 0, fmt.Errorf("scan: invalid float %q", b)
	}
	return f, nil
}

// LooksLikeInt reports whether the field consists solely of an optional
// sign and digits. Schema detection uses it for cheap type inference.
func LooksLikeInt(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	i := 0
	if b[0] == '-' || b[0] == '+' {
		i = 1
		if len(b) == 1 {
			return false
		}
	}
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			return false
		}
	}
	return true
}

// LooksLikeFloat reports whether the field parses as a float (including
// plain integers, which are also valid floats).
func LooksLikeFloat(b []byte) bool {
	_, err := strconv.ParseFloat(string(b), 64)
	return err == nil
}
