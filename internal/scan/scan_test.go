package scan

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nodb/internal/csvgen"
	"nodb/internal/metrics"
)

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// collect scans cols and returns rows as "rowID:f0|f1|..." strings sorted by
// rowID, so parallel scans can be compared deterministically.
func collect(t *testing.T, path string, opts Options, cols []int, abandon AbandonFunc) map[int64]string {
	t.Helper()
	sc, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	out := map[int64]string{}
	err = sc.ScanColumns(cols, func(rowID int64, fields []FieldRef) error {
		parts := make([]string, len(fields))
		for i, f := range fields {
			parts[i] = string(f.Bytes)
		}
		mu.Lock()
		out[rowID] = strings.Join(parts, "|")
		mu.Unlock()
		return nil
	}, abandon)
	if err != nil {
		t.Fatalf("ScanColumns: %v", err)
	}
	return out
}

func TestScanBasic(t *testing.T) {
	path := writeFile(t, "1,2,3\n4,5,6\n7,8,9\n")
	got := collect(t, path, Options{}, []int{0, 2}, nil)
	want := map[int64]string{0: "1|3", 1: "4|6", 2: "7|9"}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("row %d = %q, want %q", k, got[k], v)
		}
	}
	if len(got) != 3 {
		t.Errorf("got %d rows, want 3", len(got))
	}
}

func TestScanNoTrailingNewline(t *testing.T) {
	path := writeFile(t, "1,2\n3,4")
	got := collect(t, path, Options{}, []int{0, 1}, nil)
	if len(got) != 2 || got[1] != "3|4" {
		t.Errorf("got %v", got)
	}
}

func TestScanCRLF(t *testing.T) {
	path := writeFile(t, "1,2\r\n3,4\r\n")
	got := collect(t, path, Options{}, []int{1}, nil)
	if got[0] != "2" || got[1] != "4" {
		t.Errorf("CRLF not stripped: %v", got)
	}
}

func TestScanHeader(t *testing.T) {
	path := writeFile(t, "a,b\n10,20\n30,40\n")
	got := collect(t, path, Options{SkipHeader: true}, []int{0}, nil)
	if len(got) != 2 || got[0] != "10" || got[1] != "30" {
		t.Errorf("header handling wrong: %v", got)
	}
}

func TestScanAllColumns(t *testing.T) {
	path := writeFile(t, "1,2,3\n4,5\n")
	sc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var widths []int
	err = sc.ScanColumns(nil, func(rowID int64, fields []FieldRef) error {
		widths = append(widths, len(fields))
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(widths) != 2 || widths[0] != 3 || widths[1] != 2 {
		t.Errorf("all-columns widths = %v, want [3 2]", widths)
	}
}

func TestScanUnsortedAndDuplicateColumns(t *testing.T) {
	path := writeFile(t, "1,2,3,4\n")
	got := collect(t, path, Options{}, []int{3, 0, 3}, nil)
	if got[0] != "4|1|4" {
		t.Errorf("got %q, want 4|1|4", got[0])
	}
}

func TestScanColumnOutOfRange(t *testing.T) {
	path := writeFile(t, "1,2\n")
	sc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = sc.ScanColumns([]int{5}, func(int64, []FieldRef) error { return nil }, nil)
	if err == nil {
		t.Error("expected error for out-of-range column")
	}
}

func TestScanEmptyFile(t *testing.T) {
	path := writeFile(t, "")
	sc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := sc.NumRows()
	if err != nil || n != 0 {
		t.Errorf("NumRows = %d, %v; want 0, nil", n, err)
	}
}

func TestScanOffsets(t *testing.T) {
	path := writeFile(t, "10,20\n30,40\n")
	sc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	err = sc.ScanColumns([]int{1}, func(rowID int64, fields []FieldRef) error {
		offs = append(offs, fields[0].Offset)
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// "10,20\n30,40\n": second field starts at 3 and 9.
	if len(offs) != 2 || offs[0] != 3 || offs[1] != 9 {
		t.Errorf("offsets = %v, want [3 9]", offs)
	}
}

func TestScanAbandon(t *testing.T) {
	path := writeFile(t, "1,a\n2,b\n3,c\n")
	var c metrics.Counters
	got := collect(t, path, Options{Counters: &c}, []int{0, 1},
		func(idx int, f FieldRef) bool {
			return idx == 0 && string(f.Bytes) == "2"
		})
	if len(got) != 2 {
		t.Errorf("got %d rows, want 2 (row with 2 abandoned): %v", len(got), got)
	}
	if _, ok := got[1]; ok {
		t.Error("abandoned row should not reach handler")
	}
	if s := c.Snapshot(); s.RowsAbandoned != 1 {
		t.Errorf("RowsAbandoned = %d, want 1", s.RowsAbandoned)
	}
}

func TestScanAbandonSkipsLaterAttrs(t *testing.T) {
	// When the predicate on column 0 fails, column 3 must not be
	// tokenized; attribute counting proves it.
	path := writeFile(t, "1,x,y,z\n2,x,y,z\n")
	var c metrics.Counters
	collect(t, path, Options{Counters: &c}, []int{0, 3},
		func(idx int, f FieldRef) bool { return idx == 0 }) // abandon all rows
	s := c.Snapshot()
	if s.AttrsTokenized != 2 { // only column 0 of each row
		t.Errorf("AttrsTokenized = %d, want 2", s.AttrsTokenized)
	}
	if s.RowsAbandoned != 2 {
		t.Errorf("RowsAbandoned = %d, want 2", s.RowsAbandoned)
	}
}

func TestScanNumRows(t *testing.T) {
	path := writeFile(t, "1\n2\n3\n4\n5\n")
	sc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := sc.NumRows()
	if err != nil || n != 5 {
		t.Errorf("NumRows = %d, %v; want 5", n, err)
	}
}

func TestScanErrStop(t *testing.T) {
	path := writeFile(t, "1\n2\n3\n")
	sc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	err = sc.ScanColumns([]int{0}, func(rowID int64, fields []FieldRef) error {
		seen++
		return ErrStop
	}, nil)
	if err != nil {
		t.Errorf("ErrStop should not surface: %v", err)
	}
	if seen != 1 {
		t.Errorf("handler ran %d times, want 1", seen)
	}
}

func TestScanParallelMatchesSequential(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 20000, Cols: 5, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	seq := collect(t, path, Options{Workers: 1, ChunkSize: 4096}, []int{1, 3}, nil)
	par := collect(t, path, Options{Workers: 4, ChunkSize: 4096}, []int{1, 3}, nil)
	if len(seq) != 20000 || len(par) != len(seq) {
		t.Fatalf("row counts differ: seq=%d par=%d", len(seq), len(par))
	}
	for k, v := range seq {
		if par[k] != v {
			t.Fatalf("row %d differs: seq=%q par=%q", k, v, par[k])
		}
	}
}

func TestScanSmallChunks(t *testing.T) {
	// Chunk smaller than a row forces the carry/regrow path.
	var rows []string
	for i := 0; i < 50; i++ {
		rows = append(rows, fmt.Sprintf("%d,%s", i, strings.Repeat("x", 100)))
	}
	path := writeFile(t, strings.Join(rows, "\n")+"\n")
	got := collect(t, path, Options{ChunkSize: 32}, []int{0}, nil)
	if len(got) != 50 {
		t.Fatalf("got %d rows, want 50", len(got))
	}
	for i := int64(0); i < 50; i++ {
		if got[i] != fmt.Sprint(i) {
			t.Fatalf("row %d = %q", i, got[i])
		}
	}
}

func TestScanCountersBytes(t *testing.T) {
	content := "1,2\n3,4\n"
	path := writeFile(t, content)
	var c metrics.Counters
	collect(t, path, Options{Counters: &c}, []int{0}, nil)
	s := c.Snapshot()
	// Phase 1 (row counting) + phase 2 both read the file.
	if s.RawBytesRead < int64(len(content)) {
		t.Errorf("RawBytesRead = %d, want >= %d", s.RawBytesRead, len(content))
	}
	if s.RowsTokenized != 2 {
		t.Errorf("RowsTokenized = %d, want 2", s.RowsTokenized)
	}
}

func TestReadRowAt(t *testing.T) {
	path := writeFile(t, "10,20,30\n40,50,60\n")
	sc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got string
	err = sc.ReadRowAt(9, 1, []int{1}, func(rowID int64, fields []FieldRef) error {
		got = string(fields[0].Bytes)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "50" {
		t.Errorf("ReadRowAt field = %q, want 50", got)
	}
}

func TestReadRowAtLastRowNoNewline(t *testing.T) {
	path := writeFile(t, "1,2\n3,4")
	sc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got string
	err = sc.ReadRowAt(4, 1, []int{1}, func(rowID int64, fields []FieldRef) error {
		got = string(fields[0].Bytes)
		return nil
	})
	if err != nil || got != "4" {
		t.Errorf("got %q, err %v; want 4", got, err)
	}
}

func TestParseInt64(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"42", 42, true},
		{"-17", -17, true},
		{"+9", 9, true},
		{"9223372036854775807", 1<<63 - 1, true},
		{"-9223372036854775808", -1 << 63, true},
		{"9223372036854775808", 0, false},
		{"", 0, false},
		{"-", 0, false},
		{"12a", 0, false},
		{"1.5", 0, false},
	}
	for _, c := range cases {
		got, err := ParseInt64([]byte(c.in))
		if (err == nil) != c.ok {
			t.Errorf("ParseInt64(%q) err = %v, ok want %v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseInt64(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseFloat64(t *testing.T) {
	if v, err := ParseFloat64([]byte("2.5")); err != nil || v != 2.5 {
		t.Errorf("ParseFloat64(2.5) = %v, %v", v, err)
	}
	if _, err := ParseFloat64([]byte("nope")); err == nil {
		t.Error("expected error")
	}
}

func TestLooksLike(t *testing.T) {
	if !LooksLikeInt([]byte("-42")) || LooksLikeInt([]byte("4.2")) || LooksLikeInt([]byte("")) || LooksLikeInt([]byte("-")) {
		t.Error("LooksLikeInt misbehaves")
	}
	if !LooksLikeFloat([]byte("4.2")) || LooksLikeFloat([]byte("x")) {
		t.Error("LooksLikeFloat misbehaves")
	}
}

func BenchmarkScanTwoOfFour(b *testing.B) {
	path := filepath.Join(b.TempDir(), "b.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 100000, Cols: 4, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	st, _ := os.Stat(path)
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := Open(path, Options{})
		if err != nil {
			b.Fatal(err)
		}
		var sum int64
		err = sc.ScanColumns([]int{0, 1}, func(rowID int64, fields []FieldRef) error {
			v, _ := ParseInt64(fields[0].Bytes)
			sum += v
			return nil
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseInt64(b *testing.B) {
	in := []byte("123456789")
	for i := 0; i < b.N; i++ {
		if _, err := ParseInt64(in); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScanColumnsTail(t *testing.T) {
	path := writeFile(t, "1,2,3,4\n5,6,7,8\n")
	sc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	type rec struct{ fields, tail string }
	var got []rec
	err = sc.ScanColumnsTail([]int{0, 1}, func(rowID int64, fields []FieldRef, tail FieldRef) error {
		got = append(got, rec{string(fields[0].Bytes) + "|" + string(fields[1].Bytes), string(tail.Bytes)})
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0].fields != "1|2" || got[0].tail != "3,4" {
		t.Errorf("row 0 = %+v, want fields 1|2 tail 3,4", got[0])
	}
	if got[1].tail != "7,8" {
		t.Errorf("row 1 tail = %q", got[1].tail)
	}
}

func TestScanColumnsTailLastColumn(t *testing.T) {
	path := writeFile(t, "1,2,3\n")
	sc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var tail string
	tailOff := int64(-1)
	err = sc.ScanColumnsTail([]int{2}, func(rowID int64, fields []FieldRef, t FieldRef) error {
		tail = string(t.Bytes)
		tailOff = t.Offset
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tail != "" {
		t.Errorf("tail after last column = %q, want empty", tail)
	}
	if tailOff != 5 { // end of line "1,2,3"
		t.Errorf("tail offset = %d, want 5", tailOff)
	}
}

func TestScanColumnsTailWithAbandon(t *testing.T) {
	path := writeFile(t, "1,a,x\n2,b,y\n")
	var rows int
	sc, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = sc.ScanColumnsTail([]int{0}, func(rowID int64, fields []FieldRef, tail FieldRef) error {
		rows++
		if string(tail.Bytes) != "b,y" {
			t.Errorf("tail = %q, want b,y", tail.Bytes)
		}
		return nil
	}, func(idx int, f FieldRef) bool { return string(f.Bytes) == "1" })
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1 {
		t.Errorf("rows = %d, want 1 (first abandoned)", rows)
	}
}

// TestQuickScannerMatchesReference compares the tokenizer against a naive
// strings.Split reference on randomized tables.
func TestQuickScannerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	letters := "abcdefghijklmnop0123456789-"
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(6)
		var sb strings.Builder
		table := make([][]string, rows)
		for r := 0; r < rows; r++ {
			table[r] = make([]string, cols)
			for c := 0; c < cols; c++ {
				n := rng.Intn(8) // empty fields allowed
				var f strings.Builder
				for i := 0; i < n; i++ {
					f.WriteByte(letters[rng.Intn(len(letters))])
				}
				table[r][c] = f.String()
				if c > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(f.String())
			}
			sb.WriteByte('\n')
		}
		path := writeFile(t, sb.String())
		// Random subset of columns in random order.
		nReq := 1 + rng.Intn(cols)
		req := rng.Perm(cols)[:nReq]
		sc, err := Open(path, Options{ChunkSize: 16 + rng.Intn(64)})
		if err != nil {
			t.Fatal(err)
		}
		got := map[int64][]string{}
		err = sc.ScanColumns(req, func(rowID int64, fields []FieldRef) error {
			vals := make([]string, len(fields))
			for i, f := range fields {
				vals[i] = string(f.Bytes)
			}
			got[rowID] = vals
			return nil
		}, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != rows {
			t.Fatalf("trial %d: got %d rows, want %d", trial, len(got), rows)
		}
		for r := 0; r < rows; r++ {
			for i, c := range req {
				if got[int64(r)][i] != table[r][c] {
					t.Fatalf("trial %d row %d col %d: %q != %q",
						trial, r, c, got[int64(r)][i], table[r][c])
				}
			}
		}
	}
}

// TestQuickOffsetsPointAtFields verifies recorded byte offsets: reading
// the file at each offset must yield the field text.
func TestQuickOffsetsPointAtFields(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		rows := 1 + rng.Intn(20)
		var sb strings.Builder
		for r := 0; r < rows; r++ {
			fmt.Fprintf(&sb, "%d,%d,%d\n", rng.Intn(1000), rng.Intn(1000), rng.Intn(1000))
		}
		content := sb.String()
		path := writeFile(t, content)
		sc, err := Open(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		err = sc.ScanColumns([]int{1, 2}, func(rowID int64, fields []FieldRef) error {
			for _, f := range fields {
				at := content[f.Offset : f.Offset+int64(len(f.Bytes))]
				if at != string(f.Bytes) {
					t.Fatalf("offset %d: file has %q, field is %q", f.Offset, at, f.Bytes)
				}
			}
			return nil
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
}
