package scan

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.ndjson")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func ndjsonOpts(names ...string) Options {
	return Options{Format: FormatNDJSON, FieldNames: names, Workers: 1}
}

func TestNDJSONScanColumns(t *testing.T) {
	input := `{"id":1,"name":"alice","score":3.5}
{"score":-2,"id":2,"name":"bob"}
{"id":3,"name":"c,d","score":0}
`
	s, err := Open(writeTemp(t, input), ndjsonOpts("id", "name", "score"))
	if err != nil {
		t.Fatal(err)
	}
	var ids, names, scores []string
	err = s.ScanColumns([]int{0, 1, 2}, func(rowID int64, fields []FieldRef) error {
		ids = append(ids, string(fields[0].Bytes))
		names = append(names, string(fields[1].Bytes))
		scores = append(scores, string(fields[2].Bytes))
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(ids, " "), "1 2 3"; got != want {
		t.Errorf("ids = %q, want %q", got, want)
	}
	// Raw tokens keep their quotes: parsing is delayed until a loader needs
	// the value.
	if got, want := strings.Join(names, " "), `"alice" "bob" "c,d"`; got != want {
		t.Errorf("names = %q, want %q", got, want)
	}
	if got, want := strings.Join(scores, " "), "3.5 -2 0"; got != want {
		t.Errorf("scores = %q, want %q", got, want)
	}
}

// TestNDJSONDelayedParsing proves the rest of a row is never tokenized
// once every requested field is located: garbage after the last requested
// key goes unnoticed.
func TestNDJSONDelayedParsing(t *testing.T) {
	input := `{"a":1,"b":2,"junk":<unparseable>}` + "\n"
	s, err := Open(writeTemp(t, input), ndjsonOpts("a", "b", "junk"))
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	err = s.ScanColumns([]int{0, 1}, func(rowID int64, fields []FieldRef) error {
		rows++
		return nil
	}, nil)
	if err != nil || rows != 1 {
		t.Fatalf("scan of [a b] = (%d rows, %v), want 1 row, nil", rows, err)
	}
	// Asking for the junk field walks into it and fails.
	if err := s.ScanColumns([]int{2}, func(int64, []FieldRef) error { return nil }, nil); err == nil {
		t.Fatal("scan of junk field succeeded, want error")
	}
}

func TestNDJSONFieldOffsetsSupportReadRowAt(t *testing.T) {
	input := `{"a":10,"b":"x"}` + "\n" + `{"a":20,"b":"y"}` + "\n"
	s, err := Open(writeTemp(t, input), ndjsonOpts("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	type loc struct {
		rowOff int64
		val    string
	}
	var locs []loc
	data := []byte(input)
	err = s.ScanColumns([]int{1}, func(rowID int64, fields []FieldRef) error {
		f := fields[0]
		if got := string(data[f.Offset : f.Offset+int64(len(f.Bytes))]); got != string(f.Bytes) {
			t.Errorf("offset %d does not point at token %q (file has %q)", f.Offset, f.Bytes, got)
		}
		locs = append(locs, loc{rowOff: f.Offset, val: string(f.Bytes)})
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 2 || locs[0].val != `"x"` || locs[1].val != `"y"` {
		t.Fatalf("locs = %+v", locs)
	}
}

func TestNDJSONMissingFieldErrors(t *testing.T) {
	input := `{"a":1}` + "\n"
	s, err := Open(writeTemp(t, input), ndjsonOpts("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	err = s.ScanColumns([]int{1}, func(int64, []FieldRef) error { return nil }, nil)
	if err == nil || !strings.Contains(err.Error(), `missing field "b"`) {
		t.Fatalf("err = %v, want missing field", err)
	}
}

func TestNDJSONDuplicateKeyFirstWins(t *testing.T) {
	input := `{"a":1,"a":2}` + "\n"
	s, err := Open(writeTemp(t, input), ndjsonOpts("a"))
	if err != nil {
		t.Fatal(err)
	}
	var got string
	err = s.ScanColumns([]int{0}, func(_ int64, fields []FieldRef) error {
		got = string(fields[0].Bytes)
		return nil
	}, nil)
	if err != nil || got != "1" {
		t.Fatalf("got %q (%v), want first occurrence 1", got, err)
	}
}

func TestNDJSONAbandon(t *testing.T) {
	input := `{"a":1,"b":"keep"}` + "\n" + `{"a":2,"b":"drop"}` + "\n"
	s, err := Open(writeTemp(t, input), ndjsonOpts("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	err = s.ScanColumns([]int{0, 1}, func(_ int64, fields []FieldRef) error {
		kept = append(kept, string(fields[1].Bytes))
		return nil
	}, func(idx int, f FieldRef) bool {
		if idx != 0 {
			return false
		}
		v, err := ParseJSONInt64(f.Bytes)
		return err == nil && v != 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 || kept[0] != `"keep"` {
		t.Fatalf("kept = %q, want [\"keep\"]", kept)
	}
}

func TestNDJSONScanAllFields(t *testing.T) {
	input := `{"x":1,"y":true}` + "\r\n" + `{"y":null,"x":2}` + "\n"
	s, err := Open(writeTemp(t, input), ndjsonOpts("x", "y"))
	if err != nil {
		t.Fatal(err)
	}
	var rows []string
	err = s.ScanColumns(nil, func(_ int64, fields []FieldRef) error {
		rows = append(rows, string(fields[0].Bytes)+"/"+string(fields[1].Bytes))
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0] != "1/true" || rows[1] != "2/null" {
		t.Fatalf("rows = %q", rows)
	}
}

func TestNDJSONNestedAndEscaped(t *testing.T) {
	input := `{"kA":{"in":[1,2,{"d":"}"}]},"s":"a\"b\\c\nd","n":-1.5e3}` + "\n"
	s, err := Open(writeTemp(t, input), ndjsonOpts("kA", "s", "n"))
	if err != nil {
		t.Fatal(err)
	}
	var obj, str, num string
	err = s.ScanColumns([]int{0, 1, 2}, func(_ int64, fields []FieldRef) error {
		obj, str, num = string(fields[0].Bytes), string(fields[1].Bytes), string(fields[2].Bytes)
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if obj != `{"in":[1,2,{"d":"}"}]}` {
		t.Errorf("nested token = %q", obj)
	}
	u, err := ParseJSONString([]byte(str))
	if err != nil || u != "a\"b\\c\nd" {
		t.Errorf("unquoted = %q (%v)", u, err)
	}
	if f, err := ParseJSONFloat64([]byte(num)); err != nil || f != -1500 {
		t.Errorf("num = %v (%v)", f, err)
	}
}

func TestNDJSONParallelPortioned(t *testing.T) {
	var b strings.Builder
	const n = 500
	for i := 0; i < n; i++ {
		b.WriteString(`{"pad":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx","v":`)
		b.WriteString(jsonInt(int64(i)))
		b.WriteString("}\n")
	}
	opts := ndjsonOpts("pad", "v")
	opts.Workers = 4
	opts.ChunkSize = 1 << 10
	opts.Portioned = true
	s, err := Open(writeTemp(t, b.String()), opts)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := make(map[int64]string)
	err = s.ScanColumns([]int{1}, func(rowID int64, fields []FieldRef) error {
		mu.Lock()
		seen[rowID] = string(fields[0].Bytes)
		mu.Unlock()
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("saw %d rows, want %d", len(seen), n)
	}
	for i := int64(0); i < n; i++ {
		if seen[i] != jsonInt(i) {
			t.Fatalf("row %d = %q", i, seen[i])
		}
	}
}

func jsonInt(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestUnquoteJSONMatchesEncodingJSON(t *testing.T) {
	tokens := []string{
		`"plain"`,
		`""`,
		`"a\"b"`,
		`"\\\/\b\f\n\r\t"`,
		`"Aé中"`,
		`"😀"`,       // surrogate pair
		`"\ud800"`,  // lone high surrogate
		`"\udc00x"`, // lone low surrogate
		`"\ud800A"`, // high surrogate + non-surrogate
		`"tab\there"`,
	}
	for _, tok := range tokens {
		var want string
		if err := json.Unmarshal([]byte(tok), &want); err != nil {
			t.Fatalf("oracle rejected %q: %v", tok, err)
		}
		got, err := UnquoteJSON([]byte(tok))
		if err != nil {
			t.Fatalf("UnquoteJSON(%q): %v", tok, err)
		}
		if got != want {
			t.Errorf("UnquoteJSON(%q) = %q, want %q", tok, got, want)
		}
	}
	for _, bad := range []string{`"`, `x`, `"\q"`, `"\u12"`, `"\u12zq"`} {
		if _, err := UnquoteJSON([]byte(bad)); err == nil {
			t.Errorf("UnquoteJSON(%q) succeeded, want error", bad)
		}
	}
}

func TestNDJSONRejectsNonObjectLines(t *testing.T) {
	// Note "{\"a\":1" with no closing brace is NOT here: the lazy walk stops
	// at the last requested field and never notices the missing '}'.
	for _, input := range []string{"[1,2]\n", "42\n", "\n{\"a\":1}\n", "{\"b\":1}\n"} {
		s, err := Open(writeTemp(t, input), ndjsonOpts("a"))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ScanColumns([]int{0}, func(int64, []FieldRef) error { return nil }, nil); err == nil {
			t.Errorf("input %q scanned cleanly, want error", input)
		}
	}
}
