package scan

import (
	"bytes"
	"encoding/csv"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// FuzzScanVsCSV differentially tests the tokenizer against encoding/csv.
// The two parsers agree on the unquoted-CSV dialect the engine speaks:
// comma-delimited fields, LF or CRLF row endings, a final line with or
// without a trailing newline, and empty (including trailing) fields.
// Inputs outside that common dialect are skipped:
//
//   - quotes: encoding/csv implements RFC 4180 quoting, the tokenizer
//     deliberately does not;
//   - bare \r (not followed by \n): encoding/csv normalizes it away inside
//     fields, the tokenizer preserves it;
//   - empty lines: encoding/csv silently drops them, the tokenizer
//     reports a row with one empty field (a CSV file's empty line is a
//     real row to a system that maps row ids to byte offsets).
func FuzzScanVsCSV(f *testing.F) {
	f.Add("a,b,c\n1,2,3\n")
	f.Add("a,,b\n")            // empty middle field
	f.Add("a,b,\n,x,\n")       // empty trailing fields
	f.Add("a,b\r\nc,d\r\n")    // CRLF endings
	f.Add("a,b\nc,d")          // final line without newline
	f.Add("x\n")               // single column
	f.Add(",,,\n")             // all-empty row
	f.Add("a,b\r\nc,d")        // CRLF then unterminated final line
	f.Add("0,1,2,3,4,5,6,7\n") // wide row

	f.Fuzz(func(t *testing.T, input string) {
		if input == "" || strings.ContainsAny(input, "\"") {
			t.Skip()
		}
		// Reject bare \r and empty lines (dialect differences, see above).
		prev := byte('\n')
		for i := 0; i < len(input); i++ {
			ch := input[i]
			if ch == '\r' && (i+1 >= len(input) || input[i+1] != '\n') {
				t.Skip()
			}
			if ch == '\n' && (prev == '\n' || (prev == '\r' && i == 1)) {
				t.Skip()
			}
			if ch == '\n' && i >= 2 && input[i-1] == '\r' && input[i-2] == '\n' {
				t.Skip()
			}
			prev = ch
		}
		if input[0] == '\n' || input[0] == '\r' {
			t.Skip()
		}

		// Oracle: encoding/csv with no field-count enforcement.
		cr := csv.NewReader(strings.NewReader(input))
		cr.FieldsPerRecord = -1
		var want [][]string
		for {
			rec, err := cr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Skip() // not in the common dialect
			}
			want = append(want, rec)
		}

		path := filepath.Join(t.TempDir(), "fuzz.csv")
		if err := os.WriteFile(path, []byte(input), 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path, Options{Workers: 1, ChunkSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		var got [][]string
		err = s.ScanColumns(nil, func(rowID int64, fields []FieldRef) error {
			row := make([]string, len(fields))
			for i, fr := range fields {
				row[i] = string(fr.Bytes)
			}
			got = append(got, row)
			return nil
		}, nil)
		if err != nil {
			t.Fatalf("ScanColumns(%q): %v", input, err)
		}

		if len(got) != len(want) {
			t.Fatalf("input %q: scan saw %d rows, csv saw %d\nscan: %q\ncsv:  %q", input, len(got), len(want), got, want)
		}
		for i := range got {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("input %q row %d: scan %q vs csv %q", input, i, got[i], want[i])
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("input %q row %d field %d: scan %q vs csv %q", input, i, j, got[i][j], want[i][j])
				}
			}
		}

		// The parallel portioned scan must tokenize the same multiset of
		// rows (order differs across portions).
		sp, err := Open(path, Options{Workers: 4, ChunkSize: 16, Portioned: true})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		rowsByID := make(map[int64][]string)
		var seen int
		err = sp.ScanColumns(nil, func(rowID int64, fields []FieldRef) error {
			row := make([]string, len(fields))
			for i, fr := range fields {
				row[i] = string(fr.Bytes)
			}
			mu.Lock()
			rowsByID[rowID] = row
			seen++
			mu.Unlock()
			return nil
		}, nil)
		if err != nil {
			t.Fatalf("parallel ScanColumns(%q): %v", input, err)
		}
		if seen != len(want) {
			t.Fatalf("input %q: parallel scan saw %d rows, want %d", input, seen, len(want))
		}
		for i, rec := range want {
			gotRow, ok := rowsByID[int64(i)]
			if !ok || !equalRow(gotRow, rec) {
				t.Fatalf("input %q: parallel row %d = %q, want %q", input, i, gotRow, rec)
			}
		}
	})
}

func equalRow(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFuzzSeedsDirectly runs the seed corpus through the fuzz body logic's
// oracle comparison so `go test` (without -fuzz) still exercises it.
func TestScanMatchesCSVOnEdgeCases(t *testing.T) {
	inputs := []string{
		"a,,b\n",
		"a,b,\n,x,\n",
		"a,b\r\nc,d\r\n",
		"a,b\nc,d",
		",,,\n",
		"0,1,2,3,4,5,6,7\n",
	}
	for _, input := range inputs {
		cr := csv.NewReader(strings.NewReader(input))
		cr.FieldsPerRecord = -1
		var want [][]string
		for {
			rec, err := cr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("oracle rejected seed %q: %v", input, err)
			}
			want = append(want, rec)
		}
		path := filepath.Join(t.TempDir(), "seed.csv")
		if err := os.WriteFile(path, []byte(input), 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path, Options{Workers: 1, ChunkSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		var got [][]string
		err = s.ScanColumns(nil, func(rowID int64, fields []FieldRef) error {
			row := make([]string, len(fields))
			for i, fr := range fields {
				row[i] = string(fr.Bytes)
			}
			got = append(got, row)
			return nil
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var gotB, wantB bytes.Buffer
		for _, r := range got {
			gotB.WriteString(strings.Join(r, "\x00") + "\x01")
		}
		for _, r := range want {
			wantB.WriteString(strings.Join(r, "\x00") + "\x01")
		}
		if gotB.String() != wantB.String() {
			t.Errorf("seed %q: scan %q vs csv %q", input, got, want)
		}
	}
}
