package scan

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"nodb/internal/metrics"
)

// The parallel default makes Workers > 1 the load-bearing path; these
// tests run the hairy interactions (SkipHeader, ErrStop, cancellation,
// portion skipping) under -race (the CI race job includes this package).

// writeHeadered produces a CSV with a header line and n data rows.
func writeHeadered(t *testing.T, n int) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("a1,a2,a3\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d,%d,%d\n", i, i*2, i*3)
	}
	path := filepath.Join(t.TempDir(), "headered.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestParallelSkipHeader: with many workers and many portions, exactly the
// data rows are tokenized — the header is consumed once, never delivered,
// and row ids are a permutation of 0..n-1.
func TestParallelSkipHeader(t *testing.T) {
	const rows = 5000
	path := writeHeadered(t, rows)
	s, err := Open(path, Options{Workers: 8, ChunkSize: 512, SkipHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := make(map[int64]int64)
	err = s.ScanColumns([]int{0}, func(rowID int64, fields []FieldRef) error {
		v, err := ParseInt64(fields[0].Bytes)
		if err != nil {
			return fmt.Errorf("row %d: %v (header leaked into data?)", rowID, err)
		}
		mu.Lock()
		got[rowID] = v
		mu.Unlock()
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != rows {
		t.Fatalf("tokenized %d rows, want %d", len(got), rows)
	}
	for id, v := range got {
		if id != v {
			t.Fatalf("row %d carries value %d; portion row numbering is off", id, v)
		}
	}
	if ports, err := s.Portions(); err != nil || len(ports) < 2 {
		t.Fatalf("expected a multi-portion layout, got %d portions (err=%v)", len(ports), err)
	}
}

// TestParallelErrStop: a handler returning ErrStop ends the scan cleanly;
// concurrent workers wind down without delivering the whole file.
func TestParallelErrStop(t *testing.T) {
	const rows = 50000
	path := writeRows(t, rows)
	s, err := Open(path, Options{Workers: 8, ChunkSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	var seen atomic.Int64
	err = s.ScanColumns([]int{0}, func(rowID int64, fields []FieldRef) error {
		if seen.Add(1) >= 100 {
			return ErrStop
		}
		return nil
	}, nil)
	if err != nil {
		t.Fatalf("ErrStop surfaced as %v, want nil", err)
	}
	if got := s.RowsScanned(); got >= rows {
		t.Fatalf("ErrStop scan still tokenized all %d rows", got)
	}
}

// TestParallelCancelDuringCountPass: cancellation during the row-count
// pre-pass (before any handler runs) surfaces the context error.
func TestParallelCancelDuringCountPass(t *testing.T) {
	const rows = 50000
	path := writeRows(t, rows)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the scan starts: the pre-pass must notice
	s, err := Open(path, Options{Workers: 8, ChunkSize: 2048, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	err = s.ScanColumns([]int{0}, func(rowID int64, fields []FieldRef) error {
		t.Error("handler ran under a cancelled context")
		return nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// TestParallelCancelMidScanWithHeader: cancellation raised from a handler
// stops all workers; SkipHeader and Workers > 1 compose.
func TestParallelCancelMidScanWithHeader(t *testing.T) {
	const rows = 50000
	path := writeHeadered(t, rows)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := Open(path, Options{Workers: 8, ChunkSize: 2048, SkipHeader: true, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	err = s.ScanColumns([]int{1}, func(rowID int64, fields []FieldRef) error {
		once.Do(cancel)
		return nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if got := s.RowsScanned(); got >= rows {
		t.Fatalf("cancelled scan still tokenized all %d rows", got)
	}
}

// TestParallelPortionedHooks: Begin/End fire once per surviving portion,
// Skip prunes without reading, and per-portion row counts sum to the
// total — all under concurrent workers.
func TestParallelPortionedHooks(t *testing.T) {
	const rows = 20000
	path := writeRows(t, rows)
	s, err := Open(path, Options{Workers: 8, ChunkSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	ports, err := s.Portions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) < 4 {
		t.Fatalf("want >= 4 portions, got %d", len(ports))
	}
	var mu sync.Mutex
	begun := map[int]bool{}
	ended := map[int]int64{}
	var handled atomic.Int64
	err = s.ScanColumnsPortioned([]int{0}, PortionFuncs{
		Skip: func(p PortionInfo) bool { return p.Index%2 == 1 },
		Begin: func(p PortionInfo) (RowHandler, AbandonFunc) {
			mu.Lock()
			begun[p.Index] = true
			mu.Unlock()
			return func(rowID int64, fields []FieldRef) error {
				handled.Add(1)
				return nil
			}, nil
		},
		End: func(p PortionInfo, n int64) error {
			mu.Lock()
			ended[p.Index] = n
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var survived, skippedRows int64
	for _, p := range ports {
		if p.Index%2 == 1 {
			skippedRows += p.Rows
			if begun[p.Index] {
				t.Fatalf("skipped portion %d saw Begin", p.Index)
			}
			continue
		}
		survived += p.Rows
		if !begun[p.Index] {
			t.Fatalf("surviving portion %d missed Begin", p.Index)
		}
		if ended[p.Index] != p.Rows {
			t.Fatalf("portion %d End rows = %d, want %d", p.Index, ended[p.Index], p.Rows)
		}
	}
	if handled.Load() != survived || s.RowsScanned() != survived {
		t.Fatalf("handled %d / scanned %d rows, want %d", handled.Load(), s.RowsScanned(), survived)
	}
	if s.RowsSkipped() != skippedRows || s.RowsScanned()+s.RowsSkipped() != rows {
		t.Fatalf("skipped %d rows, want %d (total %d)", s.RowsSkipped(), skippedRows, rows)
	}
}

// TestLayoutReuseSkipsPrePass: handing a learned layout back via
// Options.Layout must not re-run the boundary/count pre-pass and must
// reproduce identical portions.
func TestLayoutReuseSkipsPrePass(t *testing.T) {
	const rows = 20000
	path := writeRows(t, rows)
	s1, err := Open(path, Options{Workers: 4, ChunkSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	ports, err := s1.Portions()
	if err != nil {
		t.Fatal(err)
	}
	var c2 metrics.Counters
	s2, err := Open(path, Options{Workers: 4, ChunkSize: 2048, Layout: ports, Counters: &c2})
	if err != nil {
		t.Fatal(err)
	}
	ports2, err := s2.Portions()
	if err != nil {
		t.Fatal(err)
	}
	if read := c2.Snapshot().RawBytesRead; read != 0 {
		t.Fatalf("layout adoption read %d bytes; want 0 (no pre-pass)", read)
	}
	if len(ports2) != len(ports) {
		t.Fatalf("layout round trip changed portion count: %d vs %d", len(ports2), len(ports))
	}
	for i := range ports {
		if ports[i] != ports2[i] {
			t.Fatalf("portion %d differs: %+v vs %+v", i, ports[i], ports2[i])
		}
	}
}
