package scan

import (
	"bytes"
	"fmt"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"

	"nodb/internal/metrics"
)

// jsonTokenizer locates requested attributes inside one NDJSON row (one
// JSON object per line). It practices the delayed-parsing idiom: per row it
// walks the object's keys, records the raw byte range of each *requested*
// field's value, structurally skips every other value without decoding it,
// and stops walking the moment the last requested field has been located.
// The bytes handed to callbacks are raw JSON tokens — strings keep their
// quotes and escapes — so nothing is unescaped or converted until a loader
// actually needs the value.
type jsonTokenizer struct {
	names  [][]byte // JSON key per attribute index (full schema order)
	fields []FieldRef
	found  []bool  // per attribute index: located in the current row
	req    [][]int // per attribute index: positions in the caller's cols
	lookup []int   // requested attribute indices (match scan order)
	want   int     // number of distinct attributes requested
}

// newJSONTokenizer builds a locator for the requested attribute indices
// (caller order, duplicates allowed). A nil cols requests every attribute.
func newJSONTokenizer(names []string, cols []int) (*jsonTokenizer, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("scan: ndjson scan requires Options.FieldNames")
	}
	t := &jsonTokenizer{
		names: make([][]byte, len(names)),
		found: make([]bool, len(names)),
		req:   make([][]int, len(names)),
	}
	for i, n := range names {
		t.names[i] = []byte(n)
	}
	if cols == nil {
		cols = make([]int, len(names))
		for i := range cols {
			cols[i] = i
		}
	}
	t.fields = make([]FieldRef, len(cols))
	for pos, attr := range cols {
		if attr < 0 || attr >= len(names) {
			return nil, fmt.Errorf("scan: ndjson column %d out of range (have %d fields)", attr, len(names))
		}
		if len(t.req[attr]) == 0 {
			t.lookup = append(t.lookup, attr)
			t.want++
		}
		t.req[attr] = append(t.req[attr], pos)
	}
	return t, nil
}

// match returns the requested attribute index whose name equals the key
// token (raw bytes between the key's quotes), or -1. Keys containing
// escapes are unquoted before comparison; the overwhelmingly common
// escape-free key compares byte-for-byte.
func (t *jsonTokenizer) match(key []byte, esc bool) int {
	if esc {
		s, err := UnquoteJSON(key)
		if err != nil {
			return -1
		}
		key = []byte(s)
	}
	for _, attr := range t.lookup {
		if bytes.Equal(t.names[attr], key) {
			return attr
		}
	}
	return -1
}

func (t *jsonTokenizer) row(line []byte, lineOff, rowID int64, handler RowHandler, tailH RowTailHandler, abandon AbandonFunc, c *metrics.Counters) error {
	if tailH != nil {
		return fmt.Errorf("scan: row %d: ndjson does not support tail capture", rowID)
	}
	for _, attr := range t.lookup {
		t.found[attr] = false
	}
	remaining := t.want
	i := skipJSONSpace(line, 0)
	if i >= len(line) || line[i] != '{' {
		return fmt.Errorf("scan: row %d: not a JSON object", rowID)
	}
	i++
	attrs := int64(0)
	first := true
	for remaining > 0 {
		i = skipJSONSpace(line, i)
		if i >= len(line) {
			return fmt.Errorf("scan: row %d: unterminated JSON object", rowID)
		}
		if line[i] == '}' {
			break
		}
		if !first {
			if line[i] != ',' {
				return fmt.Errorf("scan: row %d: expected ',' in JSON object", rowID)
			}
			i = skipJSONSpace(line, i+1)
		}
		first = false
		if i >= len(line) || line[i] != '"' {
			return fmt.Errorf("scan: row %d: expected JSON object key", rowID)
		}
		keyEnd, keyEsc, err := scanJSONString(line, i)
		if err != nil {
			return fmt.Errorf("scan: row %d: %w", rowID, err)
		}
		key := line[i+1 : keyEnd-1]
		i = skipJSONSpace(line, keyEnd)
		if i >= len(line) || line[i] != ':' {
			return fmt.Errorf("scan: row %d: expected ':' after JSON key", rowID)
		}
		i = skipJSONSpace(line, i+1)
		vEnd, err := ScanJSONValue(line, i)
		if err != nil {
			return fmt.Errorf("scan: row %d: %w", rowID, err)
		}
		// First occurrence of a key wins; later duplicates are skipped like
		// any other unrequested value.
		if attr := t.match(key, keyEsc); attr >= 0 && !t.found[attr] {
			t.found[attr] = true
			remaining--
			attrs++
			fr := FieldRef{Bytes: line[i:vEnd], Offset: lineOff + int64(i)}
			for _, pos := range t.req[attr] {
				t.fields[pos] = fr
			}
			if abandon != nil {
				for _, pos := range t.req[attr] {
					if abandon(pos, fr) {
						if c != nil {
							c.AddAttrsTokenized(attrs)
							c.AddRowsAbandoned(1)
						}
						return nil
					}
				}
			}
		}
		i = vEnd
	}
	// remaining == 0 exits the loop with the rest of the line untouched —
	// that is the delayed-parsing payoff on wide objects.
	if remaining > 0 {
		for _, attr := range t.lookup {
			if !t.found[attr] {
				return fmt.Errorf("scan: row %d: missing field %q", rowID, t.names[attr])
			}
		}
	}
	if c != nil {
		c.AddAttrsTokenized(attrs)
	}
	return handler(rowID, t.fields)
}

// skipJSONSpace advances past JSON insignificant whitespace.
func skipJSONSpace(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\r', '\n':
			i++
		default:
			return i
		}
	}
	return i
}

// scanJSONString returns the index just past the closing quote of the
// string starting at b[i] (which must be '"'), and whether it contains
// escapes. Contents are not validated — the value is only decoded if a
// query asks for it.
func scanJSONString(b []byte, i int) (end int, esc bool, err error) {
	j := i + 1
	for j < len(b) {
		switch b[j] {
		case '\\':
			esc = true
			j += 2
		case '"':
			return j + 1, esc, nil
		default:
			j++
		}
	}
	return 0, false, fmt.Errorf("unterminated JSON string")
}

// ScanJSONValue returns the index just past the JSON value starting at
// b[i]. Composite values (objects, arrays) are skipped structurally —
// tracking nesting depth and string boundaries only — without decoding
// their contents; scalar tokens are consumed without validation beyond
// their extent. This is the core of delayed parsing: skipping a value
// costs a byte walk, never an allocation or a parse.
func ScanJSONValue(b []byte, i int) (int, error) {
	if i >= len(b) {
		return 0, fmt.Errorf("missing JSON value")
	}
	switch b[i] {
	case '"':
		end, _, err := scanJSONString(b, i)
		return end, err
	case '{', '[':
		depth := 0
		j := i
		for j < len(b) {
			switch b[j] {
			case '"':
				end, _, err := scanJSONString(b, j)
				if err != nil {
					return 0, err
				}
				j = end
			case '{', '[':
				depth++
				j++
			case '}', ']':
				depth--
				j++
				if depth == 0 {
					return j, nil
				}
			default:
				j++
			}
		}
		return 0, fmt.Errorf("unterminated JSON %c", b[i])
	case 't':
		if bytes.HasPrefix(b[i:], []byte("true")) {
			return i + 4, nil
		}
	case 'f':
		if bytes.HasPrefix(b[i:], []byte("false")) {
			return i + 5, nil
		}
	case 'n':
		if bytes.HasPrefix(b[i:], []byte("null")) {
			return i + 4, nil
		}
	default:
		if b[i] == '-' || (b[i] >= '0' && b[i] <= '9') {
			j := i + 1
			for j < len(b) && isJSONNumberChar(b[j]) {
				j++
			}
			return j, nil
		}
	}
	return 0, fmt.Errorf("invalid JSON value at byte %d", i)
}

func isJSONNumberChar(c byte) bool {
	return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E'
}

// UnquoteJSON decodes a raw JSON string token (including its surrounding
// quotes) to its string value. The escape-free common case is a plain
// copy; escapes follow encoding/json semantics, including \uXXXX surrogate
// pairs and the replacement rune for unpaired surrogates.
func UnquoteJSON(b []byte) (string, error) {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return "", fmt.Errorf("scan: not a JSON string token %q", b)
	}
	s := b[1 : len(b)-1]
	if bytes.IndexByte(s, '\\') < 0 && utf8.Valid(s) {
		return string(s), nil
	}
	buf := make([]byte, 0, len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '\\' {
			if c < utf8.RuneSelf {
				buf = append(buf, c)
				i++
				continue
			}
			// Re-encode multibyte sequences so invalid UTF-8 collapses to
			// the replacement rune, exactly as encoding/json decodes it.
			r, size := utf8.DecodeRune(s[i:])
			buf = utf8.AppendRune(buf, r)
			i += size
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("scan: truncated escape in JSON string %q", b)
		}
		switch s[i] {
		case '"', '\\', '/':
			buf = append(buf, s[i])
			i++
		case 'b':
			buf = append(buf, '\b')
			i++
		case 'f':
			buf = append(buf, '\f')
			i++
		case 'n':
			buf = append(buf, '\n')
			i++
		case 'r':
			buf = append(buf, '\r')
			i++
		case 't':
			buf = append(buf, '\t')
			i++
		case 'u':
			if i+5 > len(s) {
				return "", fmt.Errorf("scan: truncated \\u escape in JSON string %q", b)
			}
			r, err := hex4(s[i+1 : i+5])
			if err != nil {
				return "", err
			}
			i += 5
			if utf16.IsSurrogate(r) {
				if i+6 <= len(s) && s[i] == '\\' && s[i+1] == 'u' {
					if r2, err2 := hex4(s[i+2 : i+6]); err2 == nil {
						if dec := utf16.DecodeRune(r, r2); dec != unicode.ReplacementChar {
							i += 6
							buf = utf8.AppendRune(buf, dec)
							continue
						}
					}
				}
				buf = utf8.AppendRune(buf, unicode.ReplacementChar)
				continue
			}
			buf = utf8.AppendRune(buf, r)
		default:
			return "", fmt.Errorf("scan: invalid escape \\%c in JSON string", s[i])
		}
	}
	return string(buf), nil
}

func hex4(b []byte) (rune, error) {
	var r rune
	for _, c := range b {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("scan: invalid \\u escape %q", b)
		}
	}
	return r, nil
}

// ParseJSONInt64 parses a raw NDJSON field token as int64.
func ParseJSONInt64(b []byte) (int64, error) {
	return ParseInt64(b)
}

// ParseJSONFloat64 parses a raw NDJSON field token as float64.
func ParseJSONFloat64(b []byte) (float64, error) {
	return ParseFloat64(b)
}

// ParseJSONString converts a raw NDJSON field token to its string value:
// string tokens are unquoted, every other token (numbers, literals, nested
// composites) keeps its raw JSON text.
func ParseJSONString(b []byte) (string, error) {
	if len(b) > 0 && b[0] == '"' {
		return UnquoteJSON(b)
	}
	return string(b), nil
}

// WalkJSONObject iterates the key/value pairs of the single JSON object in
// line, handing fn each key (unquoted) and the raw bytes of its value
// token. Returning false stops the walk early. Schema discovery and eager
// baselines use it; the query path goes through the jsonTokenizer, which
// additionally skips unrequested keys without unquoting them.
func WalkJSONObject(line []byte, fn func(key string, value []byte) bool) error {
	i := skipJSONSpace(line, 0)
	if i >= len(line) || line[i] != '{' {
		return fmt.Errorf("scan: not a JSON object")
	}
	i++
	first := true
	for {
		i = skipJSONSpace(line, i)
		if i >= len(line) {
			return fmt.Errorf("scan: unterminated JSON object")
		}
		if line[i] == '}' {
			return nil
		}
		if !first {
			if line[i] != ',' {
				return fmt.Errorf("scan: expected ',' in JSON object")
			}
			i = skipJSONSpace(line, i+1)
		}
		first = false
		if i >= len(line) || line[i] != '"' {
			return fmt.Errorf("scan: expected JSON object key")
		}
		keyEnd, _, err := scanJSONString(line, i)
		if err != nil {
			return err
		}
		key, err := UnquoteJSON(line[i:keyEnd])
		if err != nil {
			return err
		}
		i = skipJSONSpace(line, keyEnd)
		if i >= len(line) || line[i] != ':' {
			return fmt.Errorf("scan: expected ':' after JSON key")
		}
		i = skipJSONSpace(line, i+1)
		vEnd, err := ScanJSONValue(line, i)
		if err != nil {
			return err
		}
		if !fn(key, line[i:vEnd]) {
			return nil
		}
		i = vEnd
	}
}

// LooksLikeJSONObject reports whether the sample's first non-whitespace
// byte opens a JSON object — the format sniff for NDJSON files.
func LooksLikeJSONObject(sample []byte) bool {
	i := skipJSONSpace(sample, 0)
	return i < len(sample) && sample[i] == '{'
}
