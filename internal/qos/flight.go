package qos

import "sync"

// Call is one in-flight leader execution that followers wait on.
type Call struct {
	done chan struct{}
	res  *CachedResult
	err  error
}

// Done is closed when the leader finishes (successfully or not).
func (c *Call) Done() <-chan struct{} { return c.done }

// Result returns the leader's outcome once Done is closed. Both values
// nil means the leader completed but produced nothing shareable (the
// result was too large to cache, or the leader's cursor was abandoned
// early); followers then execute for themselves.
func (c *Call) Result() (*CachedResult, error) {
	<-c.done
	return c.res, c.err
}

// Group collapses identical in-flight queries: the first caller for a key
// becomes the leader and executes; concurrent callers for the same key
// become followers and wait for the leader's result instead of repeating
// the work. Unlike a classic singleflight, the leader's result travels
// through the result cache's value type, so a follower that arrives after
// the leader finished is served by the cache instead.
type Group struct {
	mu    sync.Mutex
	calls map[string]*Call
}

// Join registers interest in key. The first joiner becomes the leader
// (leader=true) and must call Finish exactly once; later joiners get the
// leader's Call to wait on.
func (g *Group) Join(key string) (c *Call, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[string]*Call)
	}
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c = &Call{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// Finish publishes the leader's outcome and wakes every follower. It must
// be called exactly once per leading Join, on every exit path — a leader
// that errors before producing anything still finishes with that error so
// followers retry rather than hang.
func (g *Group) Finish(key string, res *CachedResult, err error) {
	g.mu.Lock()
	c, ok := g.calls[key]
	if ok {
		delete(g.calls, key)
	}
	g.mu.Unlock()
	if !ok {
		return
	}
	c.res, c.err = res, err
	close(c.done)
}
