package qos

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nodb/internal/govern"
	"nodb/internal/storage"
)

func intResult(key string, cells int) *CachedResult {
	rows := make([][]storage.Value, cells)
	for i := range rows {
		rows[i] = []storage.Value{storage.IntValue(int64(i))}
	}
	return &CachedResult{Columns: []string{"c"}, Rows: rows, Plan: "plan " + key}
}

func TestCacheLRUEviction(t *testing.T) {
	small := intResult("x", 4)
	per := small.SizeBytes()
	// Room for exactly three entries; maxEntry = max/4 must still admit one.
	c := NewCache(per*4, nil)
	if c.MaxEntryBytes() < per {
		t.Fatalf("maxEntry %d cannot admit a %d-byte result", c.MaxEntryBytes(), per)
	}

	for i := 0; i < 3; i++ {
		if !c.Put(fmt.Sprintf("k%d", i), intResult("x", 4)) {
			t.Fatalf("Put k%d refused", i)
		}
	}
	// Touch k0 so k1 is the LRU victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	for i := 3; c.Stats().Bytes+per <= c.Stats().MaxBytes; i++ {
		c.Put(fmt.Sprintf("fill%d", i), intResult("x", 4))
	}
	c.Put("spill", intResult("x", 4))

	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 survived; LRU should have evicted it first")
	}
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("recently used k0 was evicted before the LRU entry")
	}
	st := c.Stats()
	if st.Evicted == 0 {
		t.Fatalf("stats report no evictions: %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("cache over budget: %d > %d", st.Bytes, st.MaxBytes)
	}
}

func TestCacheRejectsOversizedAndDuplicate(t *testing.T) {
	c := NewCache(1024, nil)
	big := intResult("big", 1000)
	if big.SizeBytes() <= c.MaxEntryBytes() {
		t.Fatalf("test setup: result %d bytes not oversized for maxEntry %d",
			big.SizeBytes(), c.MaxEntryBytes())
	}
	if c.Put("big", big) {
		t.Fatal("oversized result admitted")
	}
	if !c.Put("dup", intResult("a", 2)) {
		t.Fatal("first insert refused")
	}
	if c.Put("dup", intResult("b", 2)) {
		t.Fatal("duplicate key admitted twice")
	}
	if st := c.Stats(); st.Entries != 1 || st.Inserts != 1 {
		t.Fatalf("stats after dup insert: %+v", st)
	}
}

// TestCacheGovernorEviction drives the memory governor over budget and
// checks it reclaims cached results through their handles.
func TestCacheGovernorEviction(t *testing.T) {
	res := intResult("x", 8)
	per := res.SizeBytes()
	gov := govern.New(per*2, nil, nil)
	c := NewCache(per*100, gov) // cache bound is not the constraint here

	for i := 0; i < 4; i++ {
		if !c.Put(fmt.Sprintf("k%d", i), intResult("x", 8)) {
			t.Fatalf("Put k%d refused", i)
		}
	}
	evictions := gov.Enforce()
	if len(evictions) == 0 {
		t.Fatal("governor over budget evicted nothing")
	}
	st := c.Stats()
	if st.Entries >= 4 {
		t.Fatalf("governor eviction left all %d entries resident", st.Entries)
	}
	if st.Bytes != int64(st.Entries)*per {
		t.Fatalf("byte accounting drifted: %d bytes for %d entries of %d", st.Bytes, st.Entries, per)
	}
}

func TestCacheConcurrentPutGet(t *testing.T) {
	c := NewCache(1<<20, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", i%10)
				if res, ok := c.Get(key); ok && len(res.Rows) != 4 {
					t.Errorf("corrupt cached result for %s", key)
				}
				c.Put(key, intResult("x", 4))
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries != 10 {
		t.Fatalf("entries = %d, want 10", st.Entries)
	}
}

func TestGroupCollapse(t *testing.T) {
	var g Group
	lead, isLeader := g.Join("q")
	if !isLeader {
		t.Fatal("first joiner is not leader")
	}
	follow, isLeader2 := g.Join("q")
	if isLeader2 {
		t.Fatal("second joiner became leader")
	}
	if follow != lead {
		t.Fatal("follower got a different call")
	}
	want := intResult("q", 2)
	g.Finish("q", want, nil)
	res, err := follow.Result()
	if err != nil || res != want {
		t.Fatalf("follower got (%v, %v), want leader's result", res, err)
	}
	// After Finish the key is free again: a late joiner leads a new call.
	_, again := g.Join("q")
	if !again {
		t.Fatal("post-finish joiner should lead a fresh call")
	}
	g.Finish("q", nil, nil)
	// Finishing an unknown key is a no-op, not a panic.
	g.Finish("never-joined", nil, nil)
}

func TestTenantResolvePolicies(t *testing.T) {
	tenants := []Tenant{{Name: "a", Key: "ka", Weight: 2}, {Name: "b", Key: "kb"}}

	reject, err := NewRegistry(tenants, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := reject.Resolve("ka"); err != nil || got.Name != "a" || got.Weight != 2 {
		t.Fatalf("Resolve(ka) = (%+v, %v)", got, err)
	}
	if _, err := reject.Resolve("unknown"); err != ErrUnknownKey {
		t.Fatalf("reject policy returned %v, want ErrUnknownKey", err)
	}
	if len(reject.Tenants()) != 2 {
		t.Fatalf("reject registry grew an implicit default: %+v", reject.Tenants())
	}

	allow, err := NewRegistry(tenants, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := allow.Resolve("unknown"); err != nil || got.Name != DefaultTenant {
		t.Fatalf("allow policy Resolve(unknown) = (%+v, %v)", got, err)
	}
	w := allow.Weights()
	if w["a"] != 2 || w["b"] != 1 || w[DefaultTenant] != 1 {
		t.Fatalf("weights = %v", w)
	}
}

func TestNewRegistryValidation(t *testing.T) {
	cases := [][]Tenant{
		{{Name: "", Key: "k"}},
		{{Name: "a", Key: ""}},
		{{Name: "a", Key: "k1"}, {Name: "a", Key: "k2"}},
		{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}},
	}
	for i, ts := range cases {
		if _, err := NewRegistry(ts, false); err == nil {
			t.Errorf("case %d: invalid tenants %+v accepted", i, ts)
		}
	}
}

func TestParseTenantSpec(t *testing.T) {
	got, err := ParseTenantSpec("alpha:ka:3, beta:kb")
	if err != nil {
		t.Fatal(err)
	}
	want := []Tenant{{Name: "alpha", Key: "ka", Weight: 3}, {Name: "beta", Key: "kb", Weight: 1}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ParseTenantSpec = %+v, want %+v", got, want)
	}

	path := filepath.Join(t.TempDir(), "tenants.txt")
	if err := os.WriteFile(path, []byte("# fleet\nalpha:ka:3\n\nbeta:kb\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := ParseTenantSpec("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromFile) != 2 || fromFile[0] != want[0] || fromFile[1] != want[1] {
		t.Fatalf("ParseTenantSpec(@file) = %+v, want %+v", fromFile, want)
	}

	for _, bad := range []string{"noseparator", "a:b:c:d", "a:k:-1", "a:k:zero", ":k", "a:", "@" + path + ".missing"} {
		if _, err := ParseTenantSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := WithAPIKey(WithTenant(t.Context(), "acme"), "secret")
	if got := TenantFrom(ctx); got != "acme" {
		t.Fatalf("TenantFrom = %q", got)
	}
	if got := APIKeyFrom(ctx); got != "secret" {
		t.Fatalf("APIKeyFrom = %q", got)
	}
	if TenantFrom(t.Context()) != "" || APIKeyFrom(t.Context()) != "" {
		t.Fatal("bare context leaked an identity")
	}
	if WithTenant(t.Context(), "") != t.Context() {
		t.Fatal("empty tenant should not wrap the context")
	}
}

func TestShortKey(t *testing.T) {
	if got := shortKey("select 1\x00sig"); got != "select 1" {
		t.Fatalf("shortKey stops at NUL: %q", got)
	}
	long := strings.Repeat("x", 100)
	if got := shortKey(long); len(got) <= 48 && !strings.HasSuffix(got, "…") {
		t.Fatalf("long key not truncated: %q", got)
	}
}
