package qos

import (
	"container/list"
	"sync"
	"sync/atomic"

	"nodb/internal/govern"
	"nodb/internal/storage"
)

// CachedResult is one fully materialized query result held by the cache
// and handed to singleflight followers. The rows are owned by the cache
// and must not be mutated; consumers copy rows out before handing them to
// callers.
type CachedResult struct {
	Columns []string
	Rows    [][]storage.Value
	// Plan is the executing query's plan rendering, replayed so a cached
	// answer still explains itself.
	Plan string

	bytes int64
}

// SizeBytes estimates the result's heap footprint: the fixed Value struct
// per cell plus string payloads, headers, and the plan text.
func (r *CachedResult) SizeBytes() int64 {
	if r.bytes > 0 {
		return r.bytes
	}
	size := int64(64) + int64(len(r.Plan))
	for _, c := range r.Columns {
		size += int64(len(c)) + 16
	}
	for _, row := range r.Rows {
		size += RowBytes(row)
	}
	r.bytes = size
	return size
}

// valueFixedBytes is the in-memory size of one storage.Value struct
// (type tag + int64 + float64 + string header, with padding).
const valueFixedBytes = 40

// RowBytes estimates one result row's heap footprint; producers use it to
// bound the copy they accumulate for the cache.
func RowBytes(row []storage.Value) int64 {
	size := int64(24) + int64(len(row))*valueFixedBytes
	for _, v := range row {
		size += int64(len(v.S))
	}
	return size
}

// CacheStats is the result cache's accounting snapshot.
type CacheStats struct {
	// Enabled is false when no cache is configured (everything else zero).
	Enabled bool `json:"enabled"`
	// MaxBytes is the configured byte bound.
	MaxBytes int64 `json:"max_bytes"`
	// Bytes is the current cached footprint.
	Bytes int64 `json:"bytes"`
	// Entries is the number of cached results.
	Entries int `json:"entries"`
	// Hits and Misses count lookups since startup.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Inserts counts results admitted; Evicted counts entries removed by
	// the LRU bound or the memory governor.
	Inserts int64 `json:"inserts"`
	Evicted int64 `json:"evicted"`
}

// cacheEntry is one cached result plus its bookkeeping.
type cacheEntry struct {
	key    string
	res    *CachedResult
	handle *govern.Handle
	elem   *list.Element
}

// Cache is the byte-bounded LRU result cache. Every entry registers a
// govern handle of KindResult with zero rebuild cost — a cached result is
// by definition free to recompute relative to the adaptive structures that
// made it fast — so under budget pressure the governor reclaims results
// before columns or positional maps. Invalidation is implicit: keys embed
// raw-file signatures, so an edited file's entries are never hit again and
// age out through the LRU. Safe for concurrent use.
type Cache struct {
	max      int64
	maxEntry int64
	gov      *govern.Governor

	mu    sync.Mutex
	bytes int64
	order *list.List // front = most recently used
	byKey map[string]*cacheEntry

	hits, misses, inserts, evicted atomic.Int64
}

// NewCache creates a result cache bounded to maxBytes. gov may be nil
// (standalone use in tests); with a governor, cached bytes count against
// the engine-wide budget. Single entries larger than a quarter of the
// bound are not admitted — one huge result must not wipe the cache.
func NewCache(maxBytes int64, gov *govern.Governor) *Cache {
	return &Cache{
		max:      maxBytes,
		maxEntry: maxBytes / 4,
		gov:      gov,
		order:    list.New(),
		byKey:    make(map[string]*cacheEntry),
	}
}

// MaxEntryBytes is the largest result the cache will admit; producers use
// it to stop accumulating a doomed copy early.
func (c *Cache) MaxEntryBytes() int64 { return c.maxEntry }

// Get returns the cached result for key, promoting it to most recently
// used.
func (c *Cache) Get(key string) (*CachedResult, bool) {
	c.mu.Lock()
	e, ok := c.byKey[key]
	if ok {
		c.order.MoveToFront(e.elem)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	e.handle.Touch()
	return e.res, true
}

// Put admits a result under key, evicting least-recently-used entries
// until the bound holds again. Oversized results and duplicate keys (a
// singleflight race) are dropped; it reports whether the result was
// admitted.
func (c *Cache) Put(key string, res *CachedResult) bool {
	size := res.SizeBytes()
	if size > c.maxEntry || c.max <= 0 {
		return false
	}
	e := &cacheEntry{key: key, res: res}
	if c.gov != nil {
		e.handle = c.gov.Register(govern.KindResult, "result:"+shortKey(key), func() bool {
			c.removeEntry(e)
			return true
		})
		e.handle.SetBytes(size)
		e.handle.SetCost(0) // free to recompute: first in line under pressure
	}
	c.mu.Lock()
	if _, dup := c.byKey[key]; dup {
		c.mu.Unlock()
		if e.handle != nil {
			e.handle.Release()
		}
		return false
	}
	e.elem = c.order.PushFront(e)
	c.byKey[key] = e
	c.bytes += size
	var victims []*cacheEntry
	for c.bytes > c.max {
		back := c.order.Back()
		if back == nil {
			break
		}
		v := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.byKey, v.key)
		c.bytes -= v.res.SizeBytes()
		victims = append(victims, v)
	}
	c.mu.Unlock()
	c.inserts.Add(1)
	for _, v := range victims {
		c.evicted.Add(1)
		if v.handle != nil {
			v.handle.Release()
		}
	}
	return true
}

// removeEntry is the governor's eviction callback: drop the entry if it is
// still resident. Runs without governor locks held.
func (c *Cache) removeEntry(e *cacheEntry) {
	c.mu.Lock()
	if cur, ok := c.byKey[e.key]; ok && cur == e {
		c.order.Remove(e.elem)
		delete(c.byKey, e.key)
		c.bytes -= e.res.SizeBytes()
		c.evicted.Add(1)
	}
	c.mu.Unlock()
	if e.handle != nil {
		e.handle.Release()
	}
}

// Stats returns the cache's accounting snapshot.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	bytes, entries := c.bytes, len(c.byKey)
	c.mu.Unlock()
	return CacheStats{
		Enabled:  true,
		MaxBytes: c.max,
		Bytes:    bytes,
		Entries:  entries,
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Inserts:  c.inserts.Load(),
		Evicted:  c.evicted.Load(),
	}
}

// shortKey truncates a cache key (normalized SQL + signatures) to a
// readable governor label.
func shortKey(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			key = key[:i]
			break
		}
	}
	if len(key) > 48 {
		return key[:48] + "…"
	}
	return key
}
