// Package qos implements the serving quality-of-service layer: tenant
// identity, the signature-keyed result cache, and singleflight collapse of
// identical in-flight queries.
//
// NoDB's adaptive structures make *similar* queries cheap; production
// traffic from many users is full of *identical* queries, and those can be
// absorbed outright. The result cache keys on the normalized bound SQL
// plus the signature of every raw file the statement touches, so the
// invalidation story the engine already has — edit a file and its
// signature changes — extends to results for free: a stale entry is simply
// never looked up again and ages out of the LRU. Cached bytes register
// with the memory governor under their own kind, so results compete with
// (and, being free to recompute relative to a positional map, lose to)
// the adaptive structures under one budget.
//
// Tenancy is identity plus weights: each API key maps to a named tenant
// with a share weight, carried through context from the HTTP layer (or
// the driver DSN) into the engine, where the governor partitions its
// budget and the server partitions its admission slots proportionally.
package qos

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// DefaultTenant is the tenant name used when no registry is configured or
// when an unknown key is admitted under the allow policy.
const DefaultTenant = "default"

// Tenant is one configured tenant: a display name, the API key that
// identifies it, and its relative share weight (budget and admission
// slots are split proportionally to weights).
type Tenant struct {
	// Name is the tenant's display name (appears in stats and Explain).
	Name string
	// Key is the API key presented in X-API-Key (or apikey= in a DSN).
	Key string
	// Weight is the tenant's relative share; values <= 0 mean 1.
	Weight float64
}

func (t Tenant) weight() float64 {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// ctxKey is the private context-key namespace.
type ctxKey int

const (
	tenantCtxKey ctxKey = iota
	apiKeyCtxKey
)

// WithTenant returns a context carrying the resolved tenant name; the
// engine attributes governed structures and the result cache's accounting
// to it.
func WithTenant(ctx context.Context, name string) context.Context {
	if name == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantCtxKey, name)
}

// TenantFrom returns the tenant name carried by ctx ("" when anonymous).
func TenantFrom(ctx context.Context) string {
	name, _ := ctx.Value(tenantCtxKey).(string)
	return name
}

// WithAPIKey returns a context carrying the raw API key, for forwarding a
// caller's identity to downstream shards.
func WithAPIKey(ctx context.Context, key string) context.Context {
	if key == "" {
		return ctx
	}
	return context.WithValue(ctx, apiKeyCtxKey, key)
}

// APIKeyFrom returns the raw API key carried by ctx ("" when absent).
func APIKeyFrom(ctx context.Context) string {
	key, _ := ctx.Value(apiKeyCtxKey).(string)
	return key
}

// Registry resolves API keys to tenants. The zero value is unusable; build
// one with NewRegistry.
type Registry struct {
	tenants       []Tenant
	byKey         map[string]Tenant
	rejectUnknown bool
}

// NewRegistry builds a key→tenant resolver. rejectUnknown selects the
// unknown-key policy: true rejects requests whose key is not configured
// (Resolve returns ErrUnknownKey), false admits them as the default
// tenant. Duplicate keys or names, and empty names or keys, are errors. A
// "default" tenant may be configured explicitly to give the fallback
// tenant a weight; otherwise it is implicit with weight 1.
func NewRegistry(tenants []Tenant, rejectUnknown bool) (*Registry, error) {
	r := &Registry{rejectUnknown: rejectUnknown, byKey: make(map[string]Tenant, len(tenants))}
	names := make(map[string]bool, len(tenants))
	for _, t := range tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("qos: tenant with key %q has no name", t.Key)
		}
		if t.Key == "" {
			return nil, fmt.Errorf("qos: tenant %q has no API key", t.Name)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("qos: duplicate tenant name %q", t.Name)
		}
		if _, dup := r.byKey[t.Key]; dup {
			return nil, fmt.Errorf("qos: duplicate API key for tenant %q", t.Name)
		}
		names[t.Name] = true
		t.Weight = t.weight()
		r.byKey[t.Key] = t
		r.tenants = append(r.tenants, t)
	}
	if !rejectUnknown && !names[DefaultTenant] {
		r.tenants = append(r.tenants, Tenant{Name: DefaultTenant, Weight: 1})
	}
	return r, nil
}

// ErrUnknownKey reports an API key no configured tenant owns, under the
// reject policy.
var ErrUnknownKey = fmt.Errorf("qos: unknown API key")

// Resolve maps an API key to its tenant. An empty or unknown key resolves
// to the default tenant under the allow policy and to ErrUnknownKey under
// the reject policy.
func (r *Registry) Resolve(key string) (Tenant, error) {
	if t, ok := r.byKey[key]; ok {
		return t, nil
	}
	if r.rejectUnknown {
		return Tenant{}, ErrUnknownKey
	}
	for _, t := range r.tenants {
		if t.Name == DefaultTenant {
			return t, nil
		}
	}
	return Tenant{Name: DefaultTenant, Weight: 1}, nil
}

// Tenants returns every tenant the registry admits, including the
// implicit default under the allow policy.
func (r *Registry) Tenants() []Tenant {
	return append([]Tenant(nil), r.tenants...)
}

// Weights returns the name→weight map the governor and admission
// controller partition by.
func (r *Registry) Weights() map[string]float64 {
	w := make(map[string]float64, len(r.tenants))
	for _, t := range r.tenants {
		w[t.Name] = t.weight()
	}
	return w
}

// RejectUnknown reports the unknown-key policy.
func (r *Registry) RejectUnknown() bool { return r.rejectUnknown }

// ParseTenantSpec parses the -tenants flag / tenant= DSN syntax: a
// comma-separated list of name:key[:weight] entries, or "@path" naming a
// file with one entry per line (blank lines and #-comments ignored).
func ParseTenantSpec(spec string) ([]Tenant, error) {
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("qos: reading tenants file: %w", err)
		}
		var tenants []Tenant
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			t, err := parseTenantEntry(line)
			if err != nil {
				return nil, err
			}
			tenants = append(tenants, t)
		}
		return tenants, nil
	}
	var tenants []Tenant
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		t, err := parseTenantEntry(entry)
		if err != nil {
			return nil, err
		}
		tenants = append(tenants, t)
	}
	return tenants, nil
}

func parseTenantEntry(entry string) (Tenant, error) {
	parts := strings.Split(entry, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return Tenant{}, fmt.Errorf("qos: bad tenant entry %q (want name:key[:weight])", entry)
	}
	t := Tenant{Name: strings.TrimSpace(parts[0]), Key: strings.TrimSpace(parts[1]), Weight: 1}
	if t.Name == "" || t.Key == "" {
		return Tenant{}, fmt.Errorf("qos: bad tenant entry %q (empty name or key)", entry)
	}
	if len(parts) == 3 {
		w, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil || w <= 0 {
			return Tenant{}, fmt.Errorf("qos: bad tenant weight in %q (want a positive number)", entry)
		}
		t.Weight = w
	}
	return t, nil
}
