package storage

import "math/bits"

// Bitmap is a fixed-size bitset over row ids. The loader uses it to avoid
// re-materializing rows the adaptive store already holds, and the executor
// uses it for selection masks.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns a bitmap able to hold n bits, all zero.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bitmap capacity in bits.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitmap) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports bit i.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset zeroes the bitmap.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// And intersects b with o in place; the bitmaps must have equal capacity.
func (b *Bitmap) And(o *Bitmap) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or unions b with o in place; the bitmaps must have equal capacity.
func (b *Bitmap) Or(o *Bitmap) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// MemSize returns the approximate heap bytes held by the bitmap.
func (b *Bitmap) MemSize() int64 { return int64(len(b.words)) * 8 }
