package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nodb/internal/schema"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatal("fresh bitmap should be empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Error("Set/Get broken")
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Error("Clear broken")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Error("Reset broken")
	}
}

func TestBitmapAndOr(t *testing.T) {
	a, b := NewBitmap(100), NewBitmap(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	u := NewBitmap(100)
	for i := 0; i < 100; i++ {
		if a.Get(i) || b.Get(i) {
			u.Set(i)
		}
	}
	ab := NewBitmap(100)
	for i := 0; i < 100; i++ {
		if a.Get(i) && b.Get(i) {
			ab.Set(i)
		}
	}
	a2 := NewBitmap(100)
	for i := 0; i < 100; i += 2 {
		a2.Set(i)
	}
	a2.And(b)
	if a2.Count() != ab.Count() {
		t.Errorf("And count = %d, want %d", a2.Count(), ab.Count())
	}
	a.Or(b)
	if a.Count() != u.Count() {
		t.Errorf("Or count = %d, want %d", a.Count(), u.Count())
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{IntValue(3), IntValue(2), 1},
		{FloatValue(1.5), IntValue(2), -1},
		{IntValue(2), FloatValue(1.5), 1},
		{StringValue("a"), StringValue("b"), -1},
		{StringValue("b"), StringValue("b"), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	if IntValue(42).String() != "42" {
		t.Error("int String")
	}
	if FloatValue(2.5).String() != "2.5" {
		t.Error("float String")
	}
	if StringValue("xyz").String() != "xyz" {
		t.Error("string String")
	}
}

func TestValueAsFloat(t *testing.T) {
	if IntValue(3).AsFloat() != 3.0 || FloatValue(2.5).AsFloat() != 2.5 || StringValue("x").AsFloat() != 0 {
		t.Error("AsFloat misbehaves")
	}
}

func TestDenseColumnTypes(t *testing.T) {
	for _, typ := range []schema.Type{schema.Int64, schema.Float64, schema.String} {
		c := NewDense(typ, 4)
		if c.Len() != 0 {
			t.Fatalf("%v: fresh column not empty", typ)
		}
		vals := []Value{IntValue(1), IntValue(2)}
		if typ == schema.Float64 {
			vals = []Value{FloatValue(1.5), FloatValue(2.5)}
		}
		if typ == schema.String {
			vals = []Value{StringValue("a"), StringValue("b")}
		}
		for _, v := range vals {
			c.Append(v)
		}
		if c.Len() != 2 {
			t.Fatalf("%v: Len = %d", typ, c.Len())
		}
		if c.Value(1).Compare(vals[1]) != 0 {
			t.Errorf("%v: Value(1) = %v, want %v", typ, c.Value(1), vals[1])
		}
		c.Set(0, vals[1])
		if c.Value(0).Compare(vals[1]) != 0 {
			t.Errorf("%v: Set broken", typ)
		}
		if c.MemSize() <= 0 {
			t.Errorf("%v: MemSize = %d", typ, c.MemSize())
		}
	}
}

func TestDenseSized(t *testing.T) {
	c := NewDenseSized(schema.Int64, 10)
	if c.Len() != 10 || c.Value(5).I != 0 {
		t.Error("NewDenseSized should produce zeroed column")
	}
	c.Set(5, IntValue(7))
	if c.Value(5).I != 7 {
		t.Error("Set on sized column broken")
	}
}

func TestSparseAscendingAppend(t *testing.T) {
	s := NewSparse(schema.Int64)
	for i := int64(0); i < 100; i += 2 {
		s.Add(i, IntValue(i*10))
	}
	if s.Len() != 50 {
		t.Fatalf("Len = %d, want 50", s.Len())
	}
	if !s.Has(42) || s.Has(43) {
		t.Error("Has broken")
	}
	v, ok := s.Get(42)
	if !ok || v.I != 420 {
		t.Errorf("Get(42) = %v, %v", v, ok)
	}
	if _, ok := s.Get(41); ok {
		t.Error("Get of absent row should fail")
	}
}

func TestSparseOutOfOrderInsert(t *testing.T) {
	s := NewSparse(schema.Int64)
	order := []int64{50, 10, 90, 30, 70, 20}
	for _, r := range order {
		s.Add(r, IntValue(r))
	}
	rows := s.Rows()
	for i := 1; i < len(rows); i++ {
		if rows[i-1] >= rows[i] {
			t.Fatalf("rows not sorted: %v", rows)
		}
	}
	for _, r := range order {
		v, ok := s.Get(r)
		if !ok || v.I != r {
			t.Errorf("Get(%d) = %v, %v", r, v, ok)
		}
	}
}

func TestSparseOverwrite(t *testing.T) {
	s := NewSparse(schema.Int64)
	s.Add(5, IntValue(1))
	s.Add(5, IntValue(2))
	if s.Len() != 1 {
		t.Fatalf("duplicate Add should overwrite, Len = %d", s.Len())
	}
	v, _ := s.Get(5)
	if v.I != 2 {
		t.Errorf("overwrite failed: %v", v)
	}
}

func TestSparseAt(t *testing.T) {
	s := NewSparse(schema.Float64)
	s.Add(3, FloatValue(1.5))
	s.Add(7, FloatValue(2.5))
	r, v := s.At(1)
	if r != 7 || v.F != 2.5 {
		t.Errorf("At(1) = %d, %v", r, v)
	}
	if s.FloatAt(0) != 1.5 {
		t.Error("FloatAt broken")
	}
}

func TestSparseStringType(t *testing.T) {
	s := NewSparse(schema.String)
	s.Add(1, StringValue("hello"))
	s.Add(0, StringValue("world"))
	if s.StrAt(0) != "world" || s.StrAt(1) != "hello" {
		t.Error("string sparse column ordering broken")
	}
	if s.MemSize() <= 0 {
		t.Error("MemSize should count string bytes")
	}
}

func TestSparseToDense(t *testing.T) {
	s := NewSparse(schema.Int64)
	s.Add(1, IntValue(11))
	s.Add(3, IntValue(33))
	d := s.ToDense(5)
	if d.Len() != 5 {
		t.Fatalf("dense Len = %d, want 5", d.Len())
	}
	want := []int64{0, 11, 0, 33, 0}
	for i, w := range want {
		if d.Ints[i] != w {
			t.Errorf("dense[%d] = %d, want %d", i, d.Ints[i], w)
		}
	}
}

// Property: a SparseColumn behaves like a map[int64]int64 with sorted keys.
func TestQuickSparseLikeMap(t *testing.T) {
	f := func(ops []int16) bool {
		s := NewSparse(schema.Int64)
		ref := map[int64]int64{}
		for i, o := range ops {
			row := int64(o % 128)
			if row < 0 {
				row = -row
			}
			v := int64(i)
			s.Add(row, IntValue(v))
			ref[row] = v
		}
		if s.Len() != len(ref) {
			return false
		}
		for r, v := range ref {
			got, ok := s.Get(r)
			if !ok || got.I != v {
				return false
			}
		}
		rows := s.Rows()
		for i := 1; i < len(rows); i++ {
			if rows[i-1] >= rows[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSparseAscendingAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSparse(schema.Int64)
		for j := int64(0); j < 10000; j++ {
			s.Add(j, IntValue(j))
		}
	}
}

func BenchmarkSparseGet(b *testing.B) {
	s := NewSparse(schema.Int64)
	for j := int64(0); j < 100000; j += 2 {
		s.Add(j, IntValue(j))
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(rng.Int63n(100000))
	}
}

// TestSparseAddRunMerge checks the single-pass bulk merge against a
// per-row reference: interleaved runs, overwrites, extension, and enough
// volume that a quadratic regression would be obvious in CI.
func TestSparseAddRunMerge(t *testing.T) {
	ref := map[int64]int64{}
	sp := NewSparse(schema.Int64)
	apply := func(rows []int64, base int64) {
		sp.AddRun(rows, func(i int) Value { return IntValue(base + rows[i]) })
		for _, r := range rows {
			ref[r] = base + r
		}
	}
	// Selective first load: every third row.
	var sel []int64
	for r := int64(0); r < 120_000; r += 3 {
		sel = append(sel, r)
	}
	apply(sel, 1_000_000)
	// Wide second load: every row, newer values must win on overlap.
	all := make([]int64, 120_000)
	for i := range all {
		all[i] = int64(i)
	}
	apply(all, 2_000_000)
	// A trailing extension run (fast path).
	apply([]int64{120_000, 120_001}, 0)

	if sp.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", sp.Len(), len(ref))
	}
	prev := int64(-1)
	for i := 0; i < sp.Len(); i++ {
		row, v := sp.At(i)
		if row <= prev {
			t.Fatalf("rows not ascending/unique at ordinal %d: %d after %d", i, row, prev)
		}
		prev = row
		if want := ref[row]; v.I != want {
			t.Fatalf("row %d = %d, want %d", row, v.I, want)
		}
	}
}
