// Package storage implements the in-memory columnar store that the
// adaptive loading operators feed. It provides dense columns (fully loaded
// attributes), sparse columns (partially loaded attributes, the paper's
// "only part of the data is loaded at any given time"), bitmaps and typed
// values.
package storage

import (
	"fmt"
	"sort"

	"nodb/internal/schema"
)

// Value is one typed scalar; query results and literals use it.
type Value struct {
	Typ schema.Type
	I   int64
	F   float64
	S   string
}

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{Typ: schema.Int64, I: v} }

// FloatValue wraps a float64.
func FloatValue(v float64) Value { return Value{Typ: schema.Float64, F: v} }

// StringValue wraps a string.
func StringValue(v string) Value { return Value{Typ: schema.String, S: v} }

// AsFloat converts numeric values to float64 (ints widen; strings are 0).
func (v Value) AsFloat() float64 {
	switch v.Typ {
	case schema.Int64:
		return float64(v.I)
	case schema.Float64:
		return v.F
	default:
		return 0
	}
}

func (v Value) String() string {
	switch v.Typ {
	case schema.Int64:
		return fmt.Sprintf("%d", v.I)
	case schema.Float64:
		return fmt.Sprintf("%g", v.F)
	default:
		return v.S
	}
}

// MemBytes returns the approximate heap bytes the value occupies when
// retained in the adaptive store (strings count their backing bytes plus
// header; numerics are one word).
func (v Value) MemBytes() int64 {
	if v.Typ == schema.String {
		return int64(len(v.S)) + 16
	}
	return 8
}

// Compare orders two values of the same type family: -1, 0 or +1. Numeric
// values compare numerically across int/float; strings compare
// lexicographically.
func (v Value) Compare(o Value) int {
	if v.Typ == schema.String || o.Typ == schema.String {
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		default:
			return 0
		}
	}
	if v.Typ == schema.Int64 && o.Typ == schema.Int64 {
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		default:
			return 0
		}
	}
	a, b := v.AsFloat(), o.AsFloat()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// DenseColumn holds every value of an attribute for rows [0, Len).
type DenseColumn struct {
	Typ    schema.Type
	Ints   []int64
	Floats []float64
	Strs   []string
}

// NewDense returns an empty dense column of the given type with capacity
// for n values.
func NewDense(typ schema.Type, n int) *DenseColumn {
	c := &DenseColumn{Typ: typ}
	switch typ {
	case schema.Int64:
		c.Ints = make([]int64, 0, n)
	case schema.Float64:
		c.Floats = make([]float64, 0, n)
	case schema.String:
		c.Strs = make([]string, 0, n)
	}
	return c
}

// NewDenseSized returns a dense column of the given type with n zero
// values, for position-addressed filling by parallel loaders.
func NewDenseSized(typ schema.Type, n int) *DenseColumn {
	c := &DenseColumn{Typ: typ}
	switch typ {
	case schema.Int64:
		c.Ints = make([]int64, n)
	case schema.Float64:
		c.Floats = make([]float64, n)
	case schema.String:
		c.Strs = make([]string, n)
	}
	return c
}

// Len returns the number of values.
func (c *DenseColumn) Len() int {
	switch c.Typ {
	case schema.Int64:
		return len(c.Ints)
	case schema.Float64:
		return len(c.Floats)
	default:
		return len(c.Strs)
	}
}

// Value returns the value at position i.
func (c *DenseColumn) Value(i int) Value {
	switch c.Typ {
	case schema.Int64:
		return IntValue(c.Ints[i])
	case schema.Float64:
		return FloatValue(c.Floats[i])
	default:
		return StringValue(c.Strs[i])
	}
}

// Append adds v (which must match the column type family) at the end.
func (c *DenseColumn) Append(v Value) {
	switch c.Typ {
	case schema.Int64:
		c.Ints = append(c.Ints, v.I)
	case schema.Float64:
		c.Floats = append(c.Floats, v.AsFloat())
	default:
		c.Strs = append(c.Strs, v.S)
	}
}

// Set stores v at position i.
func (c *DenseColumn) Set(i int, v Value) {
	switch c.Typ {
	case schema.Int64:
		c.Ints[i] = v.I
	case schema.Float64:
		c.Floats[i] = v.AsFloat()
	default:
		c.Strs[i] = v.S
	}
}

// MemSize returns the approximate heap bytes held by the column.
func (c *DenseColumn) MemSize() int64 {
	switch c.Typ {
	case schema.Int64:
		return int64(cap(c.Ints)) * 8
	case schema.Float64:
		return int64(cap(c.Floats)) * 8
	default:
		var s int64
		for _, v := range c.Strs {
			s += int64(len(v)) + 16
		}
		return s
	}
}

// SparseColumn holds values for a subset of a table's rows, kept sorted by
// row id. It is the materialization of a *partially loaded* attribute:
// the paper's Partial Loads V2 stores only qualifying values and must know
// exactly which rows it holds.
type SparseColumn struct {
	Typ    schema.Type
	rows   []int64 // ascending, unique
	ints   []int64
	floats []float64
	strs   []string
}

// NewSparse returns an empty sparse column of the given type.
func NewSparse(typ schema.Type) *SparseColumn { return &SparseColumn{Typ: typ} }

// Len returns the number of rows present.
func (s *SparseColumn) Len() int { return len(s.rows) }

// Rows returns the present row ids in ascending order. The slice aliases
// internal state; callers must not mutate it.
func (s *SparseColumn) Rows() []int64 { return s.rows }

// Has reports whether row is present.
func (s *SparseColumn) Has(row int64) bool {
	i := sort.Search(len(s.rows), func(i int) bool { return s.rows[i] >= row })
	return i < len(s.rows) && s.rows[i] == row
}

// Get returns the value of row, if present.
func (s *SparseColumn) Get(row int64) (Value, bool) {
	i := sort.Search(len(s.rows), func(i int) bool { return s.rows[i] >= row })
	if i >= len(s.rows) || s.rows[i] != row {
		return Value{}, false
	}
	return s.at(i), true
}

// At returns the i-th present (row, value) pair in row order.
func (s *SparseColumn) At(i int) (int64, Value) { return s.rows[i], s.at(i) }

func (s *SparseColumn) at(i int) Value {
	switch s.Typ {
	case schema.Int64:
		return IntValue(s.ints[i])
	case schema.Float64:
		return FloatValue(s.floats[i])
	default:
		return StringValue(s.strs[i])
	}
}

// Add inserts (row, v). Appends in O(1) when rows arrive in ascending
// order (the common case: scans emit rows in file order); otherwise it
// inserts in place. Adding a row that is already present overwrites it.
func (s *SparseColumn) Add(row int64, v Value) {
	n := len(s.rows)
	if n == 0 || row > s.rows[n-1] {
		s.rows = append(s.rows, row)
		s.appendVal(v)
		return
	}
	i := sort.Search(n, func(i int) bool { return s.rows[i] >= row })
	if i < n && s.rows[i] == row {
		s.setVal(i, v)
		return
	}
	s.rows = append(s.rows, 0)
	copy(s.rows[i+1:], s.rows[i:])
	s.rows[i] = row
	s.insertVal(i, v)
}

func (s *SparseColumn) appendVal(v Value) {
	switch s.Typ {
	case schema.Int64:
		s.ints = append(s.ints, v.I)
	case schema.Float64:
		s.floats = append(s.floats, v.AsFloat())
	default:
		s.strs = append(s.strs, v.S)
	}
}

func (s *SparseColumn) setVal(i int, v Value) {
	switch s.Typ {
	case schema.Int64:
		s.ints[i] = v.I
	case schema.Float64:
		s.floats[i] = v.AsFloat()
	default:
		s.strs[i] = v.S
	}
}

// AddRun inserts rows (ascending, unique) with values val(i), in one
// merge pass: O(existing + len(rows)). Rows already present are
// overwritten with the new value. A per-row Add would memmove the tail on
// every out-of-order insert, turning a large interleaved merge (a wide
// partial load after a selective one) quadratic. It returns the
// approximate bytes the incoming values occupy (each value is
// materialized exactly once).
func (s *SparseColumn) AddRun(rows []int64, val func(i int) Value) (stored int64) {
	if len(rows) == 0 {
		return 0
	}
	n := len(s.rows)
	// Fast path: the run extends the column (scans emit in row order, so
	// the first merge into an empty column lands here).
	if n == 0 || rows[0] > s.rows[n-1] {
		s.rows = append(s.rows, rows...)
		for i := range rows {
			v := val(i)
			stored += v.MemBytes() + 8
			s.appendVal(v)
		}
		return stored
	}
	merged := make([]int64, 0, n+len(rows))
	out := NewSparse(s.Typ)
	out.rows = merged
	i, j := 0, 0
	for i < n || j < len(rows) {
		switch {
		case j >= len(rows):
			out.rows = append(out.rows, s.rows[i])
			out.appendVal(s.at(i))
			i++
		case i >= n || rows[j] <= s.rows[i]:
			if i < n && rows[j] == s.rows[i] {
				i++ // newer value wins the duplicate row
			}
			v := val(j)
			stored += v.MemBytes() + 8
			out.rows = append(out.rows, rows[j])
			out.appendVal(v)
			j++
		default:
			out.rows = append(out.rows, s.rows[i])
			out.appendVal(s.at(i))
			i++
		}
	}
	s.rows, s.ints, s.floats, s.strs = out.rows, out.ints, out.floats, out.strs
	return stored
}

func (s *SparseColumn) insertVal(i int, v Value) {
	switch s.Typ {
	case schema.Int64:
		s.ints = append(s.ints, 0)
		copy(s.ints[i+1:], s.ints[i:])
		s.ints[i] = v.I
	case schema.Float64:
		s.floats = append(s.floats, 0)
		copy(s.floats[i+1:], s.floats[i:])
		s.floats[i] = v.AsFloat()
	default:
		s.strs = append(s.strs, "")
		copy(s.strs[i+1:], s.strs[i:])
		s.strs[i] = v.S
	}
}

// IntAt returns the int64 value at ordinal i (column must be Int64).
func (s *SparseColumn) IntAt(i int) int64 { return s.ints[i] }

// FloatAt returns the float64 value at ordinal i (column must be Float64).
func (s *SparseColumn) FloatAt(i int) float64 { return s.floats[i] }

// StrAt returns the string value at ordinal i (column must be String).
func (s *SparseColumn) StrAt(i int) string { return s.strs[i] }

// MemSize returns the approximate heap bytes held by the column.
func (s *SparseColumn) MemSize() int64 {
	sz := int64(cap(s.rows)) * 8
	switch s.Typ {
	case schema.Int64:
		sz += int64(cap(s.ints)) * 8
	case schema.Float64:
		sz += int64(cap(s.floats)) * 8
	default:
		for _, v := range s.strs {
			sz += int64(len(v)) + 16
		}
	}
	return sz
}

// ToDense scatters the sparse values into a dense column of n rows; absent
// rows hold zero values. Used when a partially loaded column becomes fully
// covered.
func (s *SparseColumn) ToDense(n int) *DenseColumn {
	d := NewDenseSized(s.Typ, n)
	for i, r := range s.rows {
		d.Set(int(r), s.at(i))
	}
	return d
}
