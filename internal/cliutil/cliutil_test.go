package cliutil

import (
	"errors"
	"testing"
)

func TestNonNegative(t *testing.T) {
	if err := NonNegativeInt("nodb", "workers", 4); err != nil {
		t.Fatalf("valid value rejected: %v", err)
	}
	if err := NonNegativeInt("nodb", "workers", -1); err == nil {
		t.Fatal("negative -workers accepted")
	}
	if err := NonNegativeInt64("nodbd", "mem", -5); err == nil {
		t.Fatal("negative -mem accepted")
	}
	if err := NonNegativeFloat("nodbbench", "scale", -0.5); err == nil {
		t.Fatal("negative -scale accepted")
	}
}

// TestMessageUniform pins the shared message shape: every binary reports a
// bad flag the same way.
func TestMessageUniform(t *testing.T) {
	for _, tc := range []struct {
		got  error
		want string
	}{
		{NonNegativeInt("nodb", "workers", -3), "nodb: -workers must be >= 0 (got -3)"},
		{NonNegativeInt("nodbd", "chunksize", -1), "nodbd: -chunksize must be >= 0 (got -1)"},
		{NonNegativeInt64("nodbbench", "mem", -2), "nodbbench: -mem must be >= 0 (got -2)"},
	} {
		if tc.got == nil || tc.got.Error() != tc.want {
			t.Errorf("got %v, want %q", tc.got, tc.want)
		}
	}
}

func TestCheckFlags(t *testing.T) {
	if err := CheckFlags(nil, nil); err != nil {
		t.Fatalf("all-nil CheckFlags returned %v", err)
	}
	want := errors.New("boom")
	if err := CheckFlags(nil, want, errors.New("later")); err != want {
		t.Fatalf("CheckFlags returned %v, want first error", err)
	}
}
