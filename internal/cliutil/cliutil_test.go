package cliutil

import (
	"errors"
	"testing"
)

func TestNonNegative(t *testing.T) {
	if err := NonNegativeInt("nodb", "workers", 4); err != nil {
		t.Fatalf("valid value rejected: %v", err)
	}
	if err := NonNegativeInt("nodb", "workers", -1); err == nil {
		t.Fatal("negative -workers accepted")
	}
	if err := NonNegativeInt64("nodbd", "mem", -5); err == nil {
		t.Fatal("negative -mem accepted")
	}
	if err := NonNegativeFloat("nodbbench", "scale", -0.5); err == nil {
		t.Fatal("negative -scale accepted")
	}
}

// TestMessageUniform pins the shared message shape: every binary reports a
// bad flag the same way.
func TestMessageUniform(t *testing.T) {
	for _, tc := range []struct {
		got  error
		want string
	}{
		{NonNegativeInt("nodb", "workers", -3), "nodb: -workers must be >= 0 (got -3)"},
		{NonNegativeInt("nodbd", "chunksize", -1), "nodbd: -chunksize must be >= 0 (got -1)"},
		{NonNegativeInt64("nodbbench", "mem", -2), "nodbbench: -mem must be >= 0 (got -2)"},
	} {
		if tc.got == nil || tc.got.Error() != tc.want {
			t.Errorf("got %v, want %q", tc.got, tc.want)
		}
	}
}

func TestOptionalListenAddr(t *testing.T) {
	for _, ok := range []string{"", ":6060", "localhost:6060", "127.0.0.1:0", "[::1]:9999"} {
		if err := OptionalListenAddr("nodbd", "pprof", ok); err != nil {
			t.Errorf("valid addr %q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"6060", "localhost", "http://x:1"} {
		if err := OptionalListenAddr("nodbd", "pprof", bad); err == nil {
			t.Errorf("bad addr %q accepted", bad)
		}
	}
	if got := OptionalListenAddr("nodbd", "pprof", "nope").Error(); got != `nodbd: -pprof must be a host:port listen address (got "nope")` {
		t.Errorf("message shape drifted: %q", got)
	}
}

func TestCheckFlags(t *testing.T) {
	if err := CheckFlags(nil, nil); err != nil {
		t.Fatalf("all-nil CheckFlags returned %v", err)
	}
	want := errors.New("boom")
	if err := CheckFlags(nil, want, errors.New("later")); err != want {
		t.Fatalf("CheckFlags returned %v, want first error", err)
	}
}

func TestOptionalListenAddrBadPorts(t *testing.T) {
	for _, bad := range []string{"localhost:notaport", ":-1", ":65536"} {
		if err := OptionalListenAddr("nodbd", "pprof", bad); err == nil {
			t.Errorf("bad port %q accepted", bad)
		}
	}
	// net.Listen accepts service names and an empty port (ephemeral).
	for _, ok := range []string{"localhost:http", "localhost:"} {
		if err := OptionalListenAddr("nodbd", "pprof", ok); err != nil {
			t.Errorf("%q rejected: %v", ok, err)
		}
	}
}
