// Package cliutil holds the small pieces the command-line front ends
// (nodb, nodbd, nodbbench) share, so flag validation behaves — and reads —
// identically across binaries: a negative -workers fails fast with the
// same message everywhere instead of diverging per binary or being
// silently accepted.
package cliutil

import (
	"fmt"
	"net"
	"os"
)

// NonNegativeInt validates an integer flag that must be >= 0.
func NonNegativeInt(binary, flag string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s: -%s must be >= 0 (got %d)", binary, flag, v)
	}
	return nil
}

// NonNegativeInt64 validates an int64 flag (byte budgets) that must be >= 0.
func NonNegativeInt64(binary, flag string, v int64) error {
	if v < 0 {
		return fmt.Errorf("%s: -%s must be >= 0 (got %d)", binary, flag, v)
	}
	return nil
}

// NonNegativeFloat validates a float flag that must be >= 0.
func NonNegativeFloat(binary, flag string, v float64) error {
	if v < 0 {
		return fmt.Errorf("%s: -%s must be >= 0 (got %g)", binary, flag, v)
	}
	return nil
}

// OptionalListenAddr validates a listen-address flag that may be empty
// (empty = feature disabled). A non-empty value must be a host:port pair
// net.Listen would accept, e.g. "localhost:6060" or ":6060" — the port
// must resolve (numeric or a known service name), so a typo fails at
// flag parsing instead of asynchronously at ListenAndServe.
func OptionalListenAddr(binary, flag, v string) error {
	if v == "" {
		return nil
	}
	_, port, err := net.SplitHostPort(v)
	if err == nil {
		_, err = net.LookupPort("tcp", port)
	}
	if err != nil {
		return fmt.Errorf("%s: -%s must be a host:port listen address (got %q)", binary, flag, v)
	}
	return nil
}

// CheckFlags returns the first non-nil error (flag validation short-circuits
// on the first bad value, in declaration order).
func CheckFlags(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Exit prints err to stderr and exits with the conventional flag-error
// status 2. No-op on nil.
func Exit(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
