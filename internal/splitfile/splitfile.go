// Package splitfile implements "file cracking" (paper §4): as a side
// effect of a load that tokenizes attributes 0..k of a raw file, the
// tokenized attributes are written out as one single-column file each, and
// the un-tokenized remainder of every row is written to one residual file.
// Future loads of attribute j ≤ k read only that attribute's sidecar file —
// no other bytes, no tokenization of preceding attributes — and loads of
// j > k read only the (narrower) residual file. Residual files can be
// split again, recursively, so the raw file's loading cost keeps shrinking
// as the workload touches more of it.
package splitfile

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"nodb/internal/errs"
	"nodb/internal/metrics"
	"nodb/internal/vfs"
)

// Source describes where the values of one attribute can be read from.
type Source struct {
	// Path of the file holding the attribute.
	Path string
	// LocalCol is the attribute's index within that file (0 for a
	// single-column sidecar).
	LocalCol int
	// Cols lists the original attribute indices stored in the file, in
	// file order. len(Cols) == 1 for sidecars.
	Cols []int
	// Raw reports whether Path is the original raw file.
	Raw bool
}

// Accountant receives the registry's byte footprint and usage signals; the
// memory governor's handles satisfy it. All methods must be safe for
// concurrent use.
type Accountant interface {
	AddBytes(delta int64)
	SetBytes(n int64)
	Touch()
}

// Registry tracks the split files that exist for one raw file. Split files
// are derived state: they are dropped wholesale when the raw file changes.
// Registry is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	dir      string
	base     string // name prefix for split files
	rawPath  string
	ncols    int
	delim    byte
	seq      int            // suffix for unique file names
	colFiles map[int]string // attribute → sidecar path
	rests    []restFile     // residual files, most recent last
	counters *metrics.Counters
	acct     Accountant

	// FS is the filesystem split files are written and read through;
	// nil means the real disk. Set before the registry is shared.
	FS vfs.FS
}

func (r *Registry) fs() vfs.FS { return vfs.Default(r.FS) }

// SetAccountant attaches the byte-footprint sink (the memory governor's
// handle for this registry). Call before the registry is shared.
func (r *Registry) SetAccountant(a Accountant) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.acct = a
}

// restFile is a residual CSV holding a contiguous suffix of the original
// attributes.
type restFile struct {
	path string
	cols []int // original attribute indices, in file order
}

// NewRegistry creates a registry for rawPath whose split files live in dir
// (created on demand). ncols is the raw file's attribute count and delim
// its delimiter.
func NewRegistry(dir, rawPath string, ncols int, delim byte, counters *metrics.Counters) *Registry {
	return &Registry{
		dir:      dir,
		base:     sanitize(filepath.Base(rawPath)),
		rawPath:  rawPath,
		ncols:    ncols,
		delim:    delim,
		colFiles: make(map[int]string),
		counters: counters,
	}
}

func sanitize(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Lookup returns the best source for attribute col: its sidecar if one
// exists, else the narrowest residual file containing it, else the raw
// file.
func (r *Registry) Lookup(col int) Source {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.acct != nil {
		r.acct.Touch()
	}
	if p, ok := r.colFiles[col]; ok {
		return Source{Path: p, LocalCol: 0, Cols: []int{col}}
	}
	best := -1
	for i, rf := range r.rests {
		for _, c := range rf.cols {
			if c == col {
				if best < 0 || len(rf.cols) < len(r.rests[best].cols) {
					best = i
				}
				break
			}
		}
	}
	if best >= 0 {
		rf := r.rests[best]
		local := 0
		for i, c := range rf.cols {
			if c == col {
				local = i
				break
			}
		}
		return Source{Path: rf.path, LocalCol: local, Cols: append([]int(nil), rf.cols...)}
	}
	cols := make([]int, r.ncols)
	for i := range cols {
		cols[i] = i
	}
	return Source{Path: r.rawPath, LocalCol: col, Cols: cols, Raw: true}
}

// HasSidecar reports whether attribute col already has a single-column
// file.
func (r *Registry) HasSidecar(col int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.colFiles[col]
	return ok
}

// SplitPlan reports what a splitting load of `source` should produce when
// it tokenizes localCols (indices local to the source file): the original
// attribute ids to emit sidecars for, and the original attribute ids left
// in the new residual file.
type SplitPlan struct {
	// Sidecars maps local column index → original attribute id for every
	// column the load will tokenize and should persist.
	Sidecars map[int]int
	// RestCols are the original attribute ids of the columns after the
	// last tokenized one, in file order; empty when the split consumes
	// the whole width.
	RestCols []int
}

// PlanSplit computes the split plan for tokenizing localCols of src. The
// tokenized prefix is 0..max(localCols): the tokenizer must pass over
// every column before the target anyway, so all of them become sidecars
// (paper §4.2: "the already seen columns which do not qualify for the
// current query are not ignored as before").
func PlanSplit(src Source, localCols []int) SplitPlan {
	maxLocal := 0
	for _, c := range localCols {
		if c > maxLocal {
			maxLocal = c
		}
	}
	p := SplitPlan{Sidecars: make(map[int]int, maxLocal+1)}
	for local := 0; local <= maxLocal; local++ {
		p.Sidecars[local] = src.Cols[local]
	}
	for local := maxLocal + 1; local < len(src.Cols); local++ {
		p.RestCols = append(p.RestCols, src.Cols[local])
	}
	return p
}

// Writer persists one splitting load: sidecar files for tokenized columns
// plus an optional residual file. Create it with NewWriter, feed rows with
// WriteRow, then Close. On success the files are registered; on failure
// they are removed and the registry is untouched.
type Writer struct {
	reg      *Registry
	plan     SplitPlan
	locals   []int // sorted local column indices with sidecars
	files    []vfs.File
	bufs     []*bufio.Writer
	restFile vfs.File
	restBuf  *bufio.Writer
	paths    []string
	written  int64
	failed   bool
}

// NewWriter opens output files for the given plan.
func (r *Registry) NewWriter(plan SplitPlan) (*Writer, error) {
	if err := r.fs().MkdirAll(r.dir, 0o755); err != nil {
		return nil, errs.ClassifyWrite("splitfile mkdir", r.dir, fmt.Errorf("splitfile: %w", err))
	}
	r.mu.Lock()
	r.seq++
	seq := r.seq
	r.mu.Unlock()

	w := &Writer{reg: r, plan: plan}
	for local := range plan.Sidecars {
		w.locals = append(w.locals, local)
	}
	sort.Ints(w.locals)

	cleanup := func() {
		for _, f := range w.files {
			f.Close()
		}
		if w.restFile != nil {
			w.restFile.Close()
		}
		for _, p := range w.paths {
			r.fs().Remove(p)
		}
	}
	for _, local := range w.locals {
		orig := plan.Sidecars[local]
		path := filepath.Join(r.dir, fmt.Sprintf("%s.c%d.%d.col", r.base, orig, seq))
		f, err := r.fs().Create(path)
		if err != nil {
			cleanup()
			return nil, errs.ClassifyWrite("splitfile create", path, fmt.Errorf("splitfile: %w", err))
		}
		w.files = append(w.files, f)
		w.bufs = append(w.bufs, bufio.NewWriterSize(f, 256<<10))
		w.paths = append(w.paths, path)
	}
	if len(plan.RestCols) > 0 {
		path := filepath.Join(r.dir, fmt.Sprintf("%s.rest%d.%d.csv", r.base, plan.RestCols[0], seq))
		f, err := r.fs().Create(path)
		if err != nil {
			cleanup()
			return nil, errs.ClassifyWrite("splitfile create", path, fmt.Errorf("splitfile: %w", err))
		}
		w.restFile = f
		w.restBuf = bufio.NewWriterSize(f, 256<<10)
		w.paths = append(w.paths, path)
	}
	return w, nil
}

// WriteRow appends one row: fields[i] is the raw text of local column
// w.locals[i] (ascending local order), and tail is the un-tokenized
// remainder of the row (may be empty). The caller must feed every row of
// the source file, in any order consistent per file — rows are written in
// arrival order, so feed them in row order.
func (w *Writer) WriteRow(fields [][]byte, tail []byte) error {
	if len(fields) != len(w.bufs) {
		return fmt.Errorf("splitfile: got %d fields, want %d", len(fields), len(w.bufs))
	}
	for i, b := range fields {
		buf := w.bufs[i]
		if _, err := buf.Write(b); err != nil {
			w.failed = true
			return err
		}
		if err := buf.WriteByte('\n'); err != nil {
			w.failed = true
			return err
		}
		w.written += int64(len(b)) + 1
	}
	if w.restBuf != nil {
		if _, err := w.restBuf.Write(tail); err != nil {
			w.failed = true
			return err
		}
		if err := w.restBuf.WriteByte('\n'); err != nil {
			w.failed = true
			return err
		}
		w.written += int64(len(tail)) + 1
	}
	return nil
}

// Abort closes and removes the partial outputs without registering
// anything. Callers whose row feed stopped early — a scan error, a
// cancelled query — must Abort rather than Close: the files hold a
// prefix of the table and registering them would serve truncated
// columns to every later query.
func (w *Writer) Abort() {
	w.failed = true
	_ = w.Close()
}

// Close flushes, registers the new files, and retires residual files that
// are now fully superseded. On any earlier write failure it removes the
// partial outputs instead.
func (w *Writer) Close() error {
	var firstErr error
	for _, b := range w.bufs {
		if err := b.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if w.restBuf != nil {
		if err := w.restBuf.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, f := range w.files {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if w.restFile != nil {
		if err := w.restFile.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if w.failed || firstErr != nil {
		for _, p := range w.paths {
			w.reg.fs().Remove(p)
		}
		if firstErr != nil {
			return errs.ClassifyWrite("splitfile write", w.reg.rawPath, fmt.Errorf("splitfile: %w", firstErr))
		}
		return fmt.Errorf("splitfile: writer failed")
	}

	r := w.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	var registered int64
	for i, local := range w.locals {
		orig := w.plan.Sidecars[local]
		if _, exists := r.colFiles[orig]; !exists {
			r.colFiles[orig] = w.paths[i]
			registered += fileSize(w.paths[i])
		} else {
			r.fs().Remove(w.paths[i]) // a concurrent load beat us; keep theirs
		}
	}
	if len(w.plan.RestCols) > 0 {
		path := w.paths[len(w.paths)-1]
		r.rests = append(r.rests, restFile{path: path, cols: append([]int(nil), w.plan.RestCols...)})
		registered += fileSize(path)
	}
	if r.counters != nil {
		r.counters.AddSplitBytesWritten(w.written)
	}
	if r.acct != nil {
		r.acct.AddBytes(registered)
	}
	return nil
}

func fileSize(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return st.Size()
}

// Paths returns every file currently registered (for eviction accounting
// and cleanup).
func (r *Registry) Paths() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, p := range r.colFiles {
		out = append(out, p)
	}
	for _, rf := range r.rests {
		out = append(out, rf.path)
	}
	sort.Strings(out)
	return out
}

// DiskSize returns the total bytes of all registered split files.
func (r *Registry) DiskSize() int64 {
	var total int64
	for _, p := range r.Paths() {
		if st, err := os.Stat(p); err == nil {
			total += st.Size()
		}
	}
	return total
}

// ManifestRest describes one residual file in a manifest.
type ManifestRest struct {
	Path string
	Cols []int
}

// Manifest is the registry's serializable state: where each sidecar and
// residual file lives. Split data is plain files, so persisting a split
// set means persisting this (tiny) manifest — the data stays in place.
type Manifest struct {
	Seq      int
	Sidecars map[int]string
	Rests    []ManifestRest
}

// Manifest returns the registry's current manifest.
func (r *Registry) Manifest() Manifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.manifestLocked()
}

func (r *Registry) manifestLocked() Manifest {
	m := Manifest{Seq: r.seq, Sidecars: make(map[int]string, len(r.colFiles))}
	for c, p := range r.colFiles {
		m.Sidecars[c] = p
	}
	for _, rf := range r.rests {
		m.Rests = append(m.Rests, ManifestRest{Path: rf.path, Cols: append([]int(nil), rf.cols...)})
	}
	return m
}

// Adopt re-registers the files of a previously persisted manifest:
// entries whose file still exists and whose slot is free are taken over;
// the rest are skipped silently (a missing file just means a cold load
// later). Returns the on-disk bytes adopted.
func (r *Registry) Adopt(m Manifest) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.Seq > r.seq {
		r.seq = m.Seq
	}
	var adopted int64
	for col, p := range m.Sidecars {
		if _, exists := r.colFiles[col]; exists {
			continue
		}
		if sz := fileSize(p); sz > 0 {
			r.colFiles[col] = p
			adopted += sz
		}
	}
rests:
	for _, mr := range m.Rests {
		for _, have := range r.rests {
			if have.path == mr.Path {
				continue rests
			}
		}
		if sz := fileSize(mr.Path); sz > 0 {
			r.rests = append(r.rests, restFile{path: mr.Path, cols: append([]int(nil), mr.Cols...)})
			adopted += sz
		}
	}
	if r.acct != nil && adopted > 0 {
		r.acct.AddBytes(adopted)
	}
	return adopted
}

// Detach forgets every registered file without deleting it and zeroes the
// accounting. Used at engine close after the manifest was snapshotted:
// the files stay on disk for the next process to Adopt.
func (r *Registry) Detach() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.colFiles = make(map[int]string)
	r.rests = nil
	if r.acct != nil {
		r.acct.SetBytes(0)
	}
}

// SpillTo moves every registered file into dir (the disk cache tier),
// returning the manifest with the new paths and the bytes moved. The
// registry is left empty with zeroed accounting — the spilled set leaves
// the governed hot tier. Files that cannot be moved are deleted instead
// (degrading to the plain-eviction behavior for them).
func (r *Registry) SpillTo(dir string) (Manifest, int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.colFiles) == 0 && len(r.rests) == 0 {
		return Manifest{Seq: r.seq, Sidecars: map[int]string{}}, 0, nil
	}
	if err := r.fs().MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, 0, errs.ClassifyWrite("splitfile spill", dir, fmt.Errorf("splitfile: %w", err))
	}
	m := Manifest{Seq: r.seq, Sidecars: make(map[int]string, len(r.colFiles))}
	var moved int64
	move := func(p string) (string, bool) {
		dst := filepath.Join(dir, filepath.Base(p))
		sz := fileSize(p)
		if err := r.fs().Rename(p, dst); err != nil {
			r.fs().Remove(p) // cross-device or permission trouble: plain evict
			return "", false
		}
		moved += sz
		return dst, true
	}
	for c, p := range r.colFiles {
		if dst, ok := move(p); ok {
			m.Sidecars[c] = dst
		}
	}
	for _, rf := range r.rests {
		if dst, ok := move(rf.path); ok {
			m.Rests = append(m.Rests, ManifestRest{Path: dst, Cols: append([]int(nil), rf.cols...)})
		}
	}
	r.colFiles = make(map[int]string)
	r.rests = nil
	if r.acct != nil {
		r.acct.SetBytes(0)
	}
	return m, moved, nil
}

// Extender appends the rows of a prefix-stable growth to every registered
// split file, keeping sidecars and residual files row-aligned with the
// grown raw file. Create with NewExtender, feed every appended row in
// order with AppendRow, then Close. Any failure poisons the extender and
// Close reports it; the caller must then Drop the registry — a partially
// extended split set is row-misaligned and unusable.
type Extender struct {
	reg     *Registry
	delim   byte
	cols    []int // original attribute ids with sidecars, ascending
	files   []vfs.File
	bufs    []*bufio.Writer
	rests   [][]int // column sets of the residual files, same order
	written int64
	failed  bool
}

// extOpen opens path for appending.
func (r *Registry) extOpen(path string) (vfs.File, error) {
	return r.fs().OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
}

// NewExtender opens every registered split file for appending. Returns
// (nil, nil) when the registry holds no files — a nil *Extender is valid
// and inert. On an open failure the caller should Drop the registry.
func (r *Registry) NewExtender() (*Extender, error) {
	r.mu.Lock()
	type sidecar struct {
		col  int
		path string
	}
	sides := make([]sidecar, 0, len(r.colFiles))
	for c, p := range r.colFiles {
		sides = append(sides, sidecar{c, p})
	}
	rests := make([]restFile, len(r.rests))
	copy(rests, r.rests)
	delim := r.delim
	r.mu.Unlock()
	if len(sides) == 0 && len(rests) == 0 {
		return nil, nil
	}
	sort.Slice(sides, func(i, j int) bool { return sides[i].col < sides[j].col })

	e := &Extender{reg: r, delim: delim}
	fail := func(err error) (*Extender, error) {
		for _, f := range e.files {
			f.Close()
		}
		return nil, fmt.Errorf("splitfile: %w", err)
	}
	for _, s := range sides {
		f, err := r.extOpen(s.path)
		if err != nil {
			return fail(err)
		}
		e.cols = append(e.cols, s.col)
		e.files = append(e.files, f)
		e.bufs = append(e.bufs, bufio.NewWriterSize(f, 256<<10))
	}
	for _, rf := range rests {
		f, err := r.extOpen(rf.path)
		if err != nil {
			return fail(err)
		}
		e.files = append(e.files, f)
		e.bufs = append(e.bufs, bufio.NewWriterSize(f, 256<<10))
		e.rests = append(e.rests, append([]int(nil), rf.cols...))
	}
	return e, nil
}

// AppendRow writes one appended raw row to every open split file.
// fields[i] must be the raw text of original attribute i — the full row,
// every column tokenized. Nil-safe.
func (e *Extender) AppendRow(fields [][]byte) error {
	if e == nil {
		return nil
	}
	write := func(buf *bufio.Writer, b []byte) error {
		if _, err := buf.Write(b); err != nil {
			e.failed = true
			return err
		}
		e.written += int64(len(b))
		return nil
	}
	for i, col := range e.cols {
		if col >= len(fields) {
			e.failed = true
			return fmt.Errorf("splitfile: row has %d fields, sidecar wants col %d", len(fields), col)
		}
		if err := write(e.bufs[i], fields[col]); err != nil {
			return err
		}
		if err := write(e.bufs[i], []byte{'\n'}); err != nil {
			return err
		}
	}
	for i, cols := range e.rests {
		buf := e.bufs[len(e.cols)+i]
		for j, col := range cols {
			if col >= len(fields) {
				e.failed = true
				return fmt.Errorf("splitfile: row has %d fields, rest wants col %d", len(fields), col)
			}
			if j > 0 {
				if err := write(buf, []byte{e.delim}); err != nil {
					return err
				}
			}
			if err := write(buf, fields[col]); err != nil {
				return err
			}
		}
		if err := write(buf, []byte{'\n'}); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes the split files and updates the registry's
// accounting. On any failure (during writes or here) it reports an error
// and the caller must Drop the registry. Nil-safe.
func (e *Extender) Close() error {
	if e == nil {
		return nil
	}
	var firstErr error
	for _, b := range e.bufs {
		if err := b.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, f := range e.files {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if e.failed || firstErr != nil {
		if firstErr != nil {
			return fmt.Errorf("splitfile: %w", firstErr)
		}
		return fmt.Errorf("splitfile: extender failed")
	}
	r := e.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters != nil {
		r.counters.AddSplitBytesWritten(e.written)
	}
	if r.acct != nil {
		r.acct.AddBytes(e.written)
		r.acct.Touch()
	}
	return nil
}

// Drop removes every registered split file and resets the registry (raw
// file changed, or eviction reclaiming the storage budget).
func (r *Registry) Drop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.colFiles {
		r.fs().Remove(p)
	}
	for _, rf := range r.rests {
		r.fs().Remove(rf.path)
	}
	r.colFiles = make(map[int]string)
	r.rests = nil
	if r.acct != nil {
		r.acct.SetBytes(0)
	}
}
