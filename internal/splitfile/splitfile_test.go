package splitfile

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nodb/internal/metrics"
	"nodb/internal/scan"
)

func newTestRegistry(t *testing.T, ncols int) (*Registry, string) {
	t.Helper()
	dir := t.TempDir()
	raw := filepath.Join(dir, "table.csv")
	if err := os.WriteFile(raw, []byte("placeholder\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return NewRegistry(filepath.Join(dir, "splits"), raw, ncols, ',', nil), raw
}

func TestLookupRawFallback(t *testing.T) {
	r, raw := newTestRegistry(t, 4)
	src := r.Lookup(2)
	if !src.Raw || src.Path != raw || src.LocalCol != 2 || len(src.Cols) != 4 {
		t.Errorf("Lookup without splits = %+v", src)
	}
}

func TestPlanSplit(t *testing.T) {
	src := Source{Cols: []int{0, 1, 2, 3, 4}, Raw: true}
	p := PlanSplit(src, []int{1, 2})
	if len(p.Sidecars) != 3 { // 0,1,2 all tokenized
		t.Errorf("Sidecars = %v", p.Sidecars)
	}
	if !reflect.DeepEqual(p.RestCols, []int{3, 4}) {
		t.Errorf("RestCols = %v", p.RestCols)
	}
	// Splitting a residual file maps local to original indices.
	src2 := Source{Cols: []int{3, 4, 5}}
	p2 := PlanSplit(src2, []int{1})
	if p2.Sidecars[0] != 3 || p2.Sidecars[1] != 4 {
		t.Errorf("Sidecars = %v", p2.Sidecars)
	}
	if !reflect.DeepEqual(p2.RestCols, []int{5}) {
		t.Errorf("RestCols = %v", p2.RestCols)
	}
}

func TestPlanSplitWholeWidth(t *testing.T) {
	p := PlanSplit(Source{Cols: []int{0, 1}}, []int{1})
	if len(p.RestCols) != 0 {
		t.Errorf("RestCols = %v, want empty", p.RestCols)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	r, _ := newTestRegistry(t, 4)
	src := r.Lookup(1)
	plan := PlanSplit(src, []int{1})
	w, err := r.NewWriter(plan)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][3]string{{"10", "20", "30,40"}, {"11", "21", "31,41"}}
	for _, row := range rows {
		if err := w.WriteRow([][]byte{[]byte(row[0]), []byte(row[1])}, []byte(row[2])); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Sidecars registered for columns 0 and 1.
	for col, wantVals := range map[int][]string{0: {"10", "11"}, 1: {"20", "21"}} {
		src := r.Lookup(col)
		if src.Raw || len(src.Cols) != 1 {
			t.Fatalf("col %d: not a sidecar: %+v", col, src)
		}
		data, err := os.ReadFile(src.Path)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != wantVals[0]+"\n"+wantVals[1]+"\n" {
			t.Errorf("col %d sidecar = %q", col, data)
		}
	}
	// Residual file serves columns 2 and 3.
	src2 := r.Lookup(3)
	if src2.Raw {
		t.Fatal("col 3 should come from residual file")
	}
	if src2.LocalCol != 1 || !reflect.DeepEqual(src2.Cols, []int{2, 3}) {
		t.Errorf("residual source = %+v", src2)
	}
	data, _ := os.ReadFile(src2.Path)
	if string(data) != "30,40\n31,41\n" {
		t.Errorf("residual = %q", data)
	}
}

func TestResidualScansWithScanner(t *testing.T) {
	// A residual file must be a normal CSV the scanner can process.
	r, _ := newTestRegistry(t, 3)
	plan := PlanSplit(r.Lookup(0), []int{0})
	w, err := r.NewWriter(plan)
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRow([][]byte{[]byte("1")}, []byte("2,3"))
	w.WriteRow([][]byte{[]byte("4")}, []byte("5,6"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	src := r.Lookup(2)
	sc, err := scan.Open(src.Path, scan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	err = sc.ScanColumns([]int{src.LocalCol}, func(rowID int64, fields []scan.FieldRef) error {
		got = append(got, string(fields[0].Bytes))
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"3", "6"}) {
		t.Errorf("scanned residual col = %v", got)
	}
}

func TestRecursiveSplit(t *testing.T) {
	// Split 0..1 of a 5-col file, then split the residual again.
	r, _ := newTestRegistry(t, 5)
	w, err := r.NewWriter(PlanSplit(r.Lookup(1), []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRow([][]byte{[]byte("a0"), []byte("a1")}, []byte("a2,a3,a4"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	src := r.Lookup(3)
	if src.Raw || src.LocalCol != 1 {
		t.Fatalf("expected residual source, got %+v", src)
	}
	w2, err := r.NewWriter(PlanSplit(src, []int{src.LocalCol}))
	if err != nil {
		t.Fatal(err)
	}
	w2.WriteRow([][]byte{[]byte("a2"), []byte("a3")}, []byte("a4"))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Column 3 now has its own sidecar; column 4 comes from the narrower
	// residual.
	if !r.HasSidecar(3) || !r.HasSidecar(2) {
		t.Error("second split should register sidecars for 2 and 3")
	}
	src4 := r.Lookup(4)
	if src4.Raw || len(src4.Cols) != 1 || src4.Cols[0] != 4 {
		t.Errorf("col 4 source = %+v", src4)
	}
}

func TestWriterFieldCountMismatch(t *testing.T) {
	r, _ := newTestRegistry(t, 3)
	w, err := r.NewWriter(PlanSplit(r.Lookup(1), []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRow([][]byte{[]byte("only-one")}, nil); err == nil {
		t.Error("mismatched field count should error")
	}
	w.Close()
}

func TestDropRemovesFiles(t *testing.T) {
	r, _ := newTestRegistry(t, 2)
	w, err := r.NewWriter(PlanSplit(r.Lookup(1), []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRow([][]byte{[]byte("1"), []byte("2")}, nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	paths := r.Paths()
	if len(paths) == 0 {
		t.Fatal("no files registered")
	}
	if r.DiskSize() <= 0 {
		t.Error("DiskSize should be positive")
	}
	r.Drop()
	for _, p := range paths {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("file %s survived Drop", p)
		}
	}
	if !r.Lookup(0).Raw {
		t.Error("after Drop, lookups should fall back to raw")
	}
}

func TestCountersAccounting(t *testing.T) {
	var c metrics.Counters
	dir := t.TempDir()
	raw := filepath.Join(dir, "t.csv")
	os.WriteFile(raw, []byte("x\n"), 0o644)
	r := NewRegistry(filepath.Join(dir, "s"), raw, 2, ',', &c)
	w, err := r.NewWriter(PlanSplit(r.Lookup(0), []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRow([][]byte{[]byte("123")}, []byte("456"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if s := c.Snapshot(); s.SplitBytesWritten != 8 { // "123\n" + "456\n"
		t.Errorf("SplitBytesWritten = %d, want 8", s.SplitBytesWritten)
	}
}

func TestConcurrentWritersKeepOneSidecar(t *testing.T) {
	r, _ := newTestRegistry(t, 2)
	plan := PlanSplit(r.Lookup(0), []int{0})
	w1, err := r.NewWriter(plan)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := r.NewWriter(plan)
	if err != nil {
		t.Fatal(err)
	}
	w1.WriteRow([][]byte{[]byte("first")}, []byte("t"))
	w2.WriteRow([][]byte{[]byte("second")}, []byte("t"))
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	src := r.Lookup(0)
	data, err := os.ReadFile(src.Path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "first\n" {
		t.Errorf("winner should be the first Close; got %q", data)
	}
}

func TestWriterCloseAfterFailureRemovesFiles(t *testing.T) {
	r, _ := newTestRegistry(t, 3)
	w, err := r.NewWriter(PlanSplit(r.Lookup(1), []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	// Force a failure via field-count mismatch, then Close.
	if err := w.WriteRow([][]byte{[]byte("x")}, nil); err == nil {
		t.Fatal("expected mismatch error")
	}
	// Close after a failed write must not register anything... the writer
	// only marks failure on I/O errors; a mismatch returns early. Write a
	// good row then close normally to confirm the mismatch didn't corrupt
	// state.
	if err := w.WriteRow([][]byte{[]byte("1"), []byte("2")}, []byte("3")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	src := r.Lookup(0)
	data, _ := os.ReadFile(src.Path)
	if string(data) != "1\n" {
		t.Errorf("sidecar = %q", data)
	}
}

func TestLookupPrefersNarrowestResidual(t *testing.T) {
	r, _ := newTestRegistry(t, 6)
	// First split: sidecars 0..1, residual {2,3,4,5}.
	w, _ := r.NewWriter(PlanSplit(r.Lookup(1), []int{1}))
	w.WriteRow([][]byte{[]byte("a"), []byte("b")}, []byte("c,d,e,f"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Second split of the residual: sidecars 2..3, residual {4,5}.
	src := r.Lookup(3)
	w2, _ := r.NewWriter(PlanSplit(src, []int{src.LocalCol}))
	w2.WriteRow([][]byte{[]byte("c"), []byte("d")}, []byte("e,f"))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got := r.Lookup(5)
	if got.Raw || len(got.Cols) != 2 || got.LocalCol != 1 {
		t.Errorf("col 5 should come from the 2-wide residual: %+v", got)
	}
}

func TestSanitize(t *testing.T) {
	if s := sanitize("weird name!.csv"); s != "weird_name_.csv" {
		t.Errorf("sanitize = %q", s)
	}
}

func TestExtenderAppendsAllFiles(t *testing.T) {
	// Split a 4-col table into sidecars 0..1 and residual {2,3}, then
	// extend with two appended rows: every file must gain the rows in
	// order, keeping row alignment with the grown raw file.
	r, _ := newTestRegistry(t, 4)
	w, err := r.NewWriter(PlanSplit(r.Lookup(1), []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRow([][]byte{[]byte("10"), []byte("20")}, []byte("30,40"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sizeBefore := r.DiskSize()

	e, err := r.NewExtender()
	if err != nil {
		t.Fatal(err)
	}
	if e == nil {
		t.Fatal("registry with files returned a nil extender")
	}
	for _, row := range [][]string{{"11", "21", "31", "41"}, {"12", "22", "32", "42"}} {
		fields := make([][]byte, len(row))
		for i, v := range row {
			fields[i] = []byte(v)
		}
		if err := e.AppendRow(fields); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	for col, want := range map[int]string{0: "10\n11\n12\n", 1: "20\n21\n22\n"} {
		data, err := os.ReadFile(r.Lookup(col).Path)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != want {
			t.Errorf("sidecar %d = %q, want %q", col, data, want)
		}
	}
	data, err := os.ReadFile(r.Lookup(2).Path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "30,40\n31,41\n32,42\n" {
		t.Errorf("residual = %q", data)
	}
	if r.DiskSize() <= sizeBefore {
		t.Errorf("DiskSize %d -> %d, want growth accounted", sizeBefore, r.DiskSize())
	}
}

func TestExtenderEmptyRegistry(t *testing.T) {
	r, _ := newTestRegistry(t, 2)
	e, err := r.NewExtender()
	if err != nil || e != nil {
		t.Fatalf("empty registry: extender=%v err=%v, want nil, nil", e, err)
	}
	// A nil extender is inert.
	if err := e.AppendRow([][]byte{[]byte("x")}); err != nil {
		t.Error(err)
	}
	if err := e.Close(); err != nil {
		t.Error(err)
	}
}

func TestExtenderShortRowPoisons(t *testing.T) {
	r, _ := newTestRegistry(t, 3)
	w, err := r.NewWriter(PlanSplit(r.Lookup(2), []int{2}))
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRow([][]byte{[]byte("a"), []byte("b"), []byte("c")}, nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	e, err := r.NewExtender()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AppendRow([][]byte{[]byte("only")}); err == nil {
		t.Fatal("short row should error")
	}
	if err := e.Close(); err == nil {
		t.Error("Close after a failed append must report the poison")
	}
}
