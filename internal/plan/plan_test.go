package plan

import (
	"fmt"
	"strings"
	"testing"

	"nodb/internal/exec"
	"nodb/internal/schema"
	"nodb/internal/sql"
)

// fakeCat implements CatalogInfo over in-memory schemas.
type fakeCat struct {
	schemas map[string]*schema.Schema
	dense   map[string]map[int]bool
}

func (f *fakeCat) TableSchema(name string) (*schema.Schema, error) {
	s, ok := f.schemas[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("no table %q", name)
	}
	return s, nil
}

func (f *fakeCat) DenseAll(name string, cols []int) bool {
	d := f.dense[strings.ToLower(name)]
	for _, c := range cols {
		if !d[c] {
			return false
		}
	}
	return true
}

func intSchema(names ...string) *schema.Schema {
	s := &schema.Schema{Delimiter: ','}
	for _, n := range names {
		s.Columns = append(s.Columns, schema.Column{Name: n, Type: schema.Int64})
	}
	return s
}

func testCat() *fakeCat {
	return &fakeCat{
		schemas: map[string]*schema.Schema{
			"r": intSchema("a1", "a2", "a3", "a4"),
			"s": intSchema("b1", "b2"),
		},
		dense: map[string]map[int]bool{"r": {}, "s": {}},
	}
}

func build(t *testing.T, query string, cat CatalogInfo, pol Policy) *Plan {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Build(stmt, cat, pol)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestBuildQ1(t *testing.T) {
	p := build(t, "select sum(a1),min(a4),max(a3),avg(a2) from R where a1>10 and a1<20 and a2>30 and a2<40",
		testCat(), PolicyColumnLoads)
	if len(p.Tables) != 1 {
		t.Fatalf("tables = %d", len(p.Tables))
	}
	tp := p.Tables[0]
	if len(tp.NeedCols) != 4 { // all four attributes are referenced
		t.Errorf("NeedCols = %v", tp.NeedCols)
	}
	if len(tp.Conj.Preds) != 4 {
		t.Errorf("preds = %d", len(tp.Conj.Preds))
	}
	if tp.LoadOp != LoadColumns {
		t.Errorf("LoadOp = %v", tp.LoadOp)
	}
	if len(p.Aggs) != 4 || p.Aggs[0].Kind != sql.AggSum || p.Aggs[0].Col != (exec.ColKey{Tab: 0, Col: 0}) {
		t.Errorf("aggs = %v", p.Aggs)
	}
	if p.Output[1] != "min(a4)" {
		t.Errorf("output = %v", p.Output)
	}
}

func TestRewriteLoadOps(t *testing.T) {
	cat := testCat()
	q := "select sum(a1) from R where a2 > 5"
	cases := []struct {
		pol  Policy
		want LoadOp
	}{
		{PolicyFullLoad, LoadFull},
		{PolicyColumnLoads, LoadColumns},
		{PolicyPartialV1, LoadPartialEphemeral},
		{PolicyPartialV2, LoadPartialRetained},
		{PolicySplitFiles, LoadSplit},
		{PolicyExternal, LoadExternal},
	}
	for _, c := range cases {
		p := build(t, q, cat, c.pol)
		if got := p.Tables[0].LoadOp; got != c.want {
			t.Errorf("policy %v: LoadOp = %v, want %v", c.pol, got, c.want)
		}
	}
}

func TestRewriteLoadNoneWhenDense(t *testing.T) {
	cat := testCat()
	cat.dense["r"] = map[int]bool{0: true, 1: true}
	p := build(t, "select sum(a1) from R where a2 > 5", cat, PolicyColumnLoads)
	if p.Tables[0].LoadOp != LoadNone {
		t.Errorf("LoadOp = %v, want none (cols loaded)", p.Tables[0].LoadOp)
	}
	// Full policy still requires ALL columns loaded.
	p2 := build(t, "select sum(a1) from R where a2 > 5", cat, PolicyFullLoad)
	if p2.Tables[0].LoadOp != LoadFull {
		t.Errorf("full policy LoadOp = %v, want full-load", p2.Tables[0].LoadOp)
	}
	cat.dense["r"] = map[int]bool{0: true, 1: true, 2: true, 3: true}
	p3 := build(t, "select sum(a1) from R where a2 > 5", cat, PolicyFullLoad)
	if p3.Tables[0].LoadOp != LoadNone {
		t.Errorf("fully loaded table LoadOp = %v", p3.Tables[0].LoadOp)
	}
}

func TestBuildJoin(t *testing.T) {
	p := build(t, "select sum(r.a2) from R r join S s on r.a1 = s.b1 where s.b2 > 3",
		testCat(), PolicyColumnLoads)
	if len(p.Tables) != 2 {
		t.Fatalf("tables = %d", len(p.Tables))
	}
	if len(p.Joins) != 1 {
		t.Fatalf("joins = %d", len(p.Joins))
	}
	j := p.Joins[0]
	if j.Left != (exec.ColKey{Tab: 0, Col: 0}) || j.Right != (exec.ColKey{Tab: 1, Col: 0}) {
		t.Errorf("join edge = %+v", j)
	}
	// Join keys and predicate columns are needed.
	if got := p.Tables[0].NeedCols; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("R NeedCols = %v", got)
	}
	if got := p.Tables[1].NeedCols; len(got) != 2 {
		t.Errorf("S NeedCols = %v", got)
	}
	// Predicate on s.b2 landed on table 1.
	if len(p.Tables[1].Conj.Preds) != 1 || p.Tables[1].Conj.Preds[0].Col != 1 {
		t.Errorf("S conj = %v", p.Tables[1].Conj)
	}
	if len(p.Tables[0].Conj.Preds) != 0 {
		t.Errorf("R conj should be empty: %v", p.Tables[0].Conj)
	}
}

func TestBuildUnqualifiedAcrossTables(t *testing.T) {
	// b2 exists only in S → resolvable unqualified.
	p := build(t, "select sum(b2) from R join S on a1 = b1", testCat(), PolicyColumnLoads)
	if p.Aggs[0].Col != (exec.ColKey{Tab: 1, Col: 1}) {
		t.Errorf("agg col = %v", p.Aggs[0].Col)
	}
}

func TestBuildErrors(t *testing.T) {
	cat := testCat()
	bad := []string{
		"select a1 from NoSuchTable",
		"select nope from R",
		"select sum(a1) from R where nope > 1",
		"select r.a9 from R r",
		"select x.a1 from R r",
		"select a1, sum(a2) from R",              // plain + agg without group by
		"select a1 from R group by a1",           // group by without aggregates
		"select a2, count(*) from R group by a1", // a2 not a key
		"select a1 from R order by a2",           // order by col not selected
	}
	for _, q := range bad {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := Build(stmt, cat, PolicyColumnLoads); err == nil {
			t.Errorf("Build(%q) should fail", q)
		}
	}
}

func TestBuildAmbiguousColumn(t *testing.T) {
	cat := &fakeCat{
		schemas: map[string]*schema.Schema{
			"a": intSchema("x"),
			"b": intSchema("x"),
		},
		dense: map[string]map[int]bool{"a": {}, "b": {}},
	}
	stmt, _ := sql.Parse("select x from A join B on a.x = b.x")
	if _, err := Build(stmt, cat, PolicyColumnLoads); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column should fail: %v", err)
	}
}

func TestBuildSumOnStringRejected(t *testing.T) {
	cat := &fakeCat{
		schemas: map[string]*schema.Schema{"t": {Columns: []schema.Column{{Name: "s", Type: schema.String}}}},
		dense:   map[string]map[int]bool{"t": {}},
	}
	stmt, _ := sql.Parse("select sum(s) from T")
	if _, err := Build(stmt, cat, PolicyColumnLoads); err == nil {
		t.Error("sum(string) should be rejected")
	}
	stmt2, _ := sql.Parse("select min(s) from T")
	if _, err := Build(stmt2, cat, PolicyColumnLoads); err != nil {
		t.Errorf("min(string) is fine: %v", err)
	}
}

func TestBuildGroupBySlots(t *testing.T) {
	p := build(t, "select count(*), a1 from R group by a1", testCat(), PolicyColumnLoads)
	if len(p.Slots) != 2 {
		t.Fatalf("slots = %v", p.Slots)
	}
	if !p.Slots[0].Agg || p.Slots[1].Agg {
		t.Errorf("slot kinds = %v", p.Slots)
	}
	if p.Output[0] != "count(*)" || p.Output[1] != "a1" {
		t.Errorf("output = %v", p.Output)
	}
}

func TestBuildOrderByPosition(t *testing.T) {
	p := build(t, "select count(*), a1 from R group by a1 order by a1 desc", testCat(), PolicyColumnLoads)
	if len(p.OrderBy) != 1 || p.OrderBy[0].Index != 1 || !p.OrderBy[0].Desc {
		t.Errorf("order by = %v", p.OrderBy)
	}
}

func TestBuildStar(t *testing.T) {
	p := build(t, "select * from R limit 2", testCat(), PolicyColumnLoads)
	if len(p.Project) != 4 || len(p.Output) != 4 || p.Limit != 2 {
		t.Errorf("star plan: project=%v output=%v limit=%d", p.Project, p.Output, p.Limit)
	}
	if p.Tables[0].NeedCols[3] != 3 {
		t.Errorf("star NeedCols = %v", p.Tables[0].NeedCols)
	}
}

func TestBuildCountStarMinimalColumns(t *testing.T) {
	p := build(t, "select count(*) from R", testCat(), PolicyColumnLoads)
	if len(p.Tables[0].NeedCols) != 1 || p.Tables[0].NeedCols[0] != 0 {
		t.Errorf("count(*) NeedCols = %v, want [0]", p.Tables[0].NeedCols)
	}
}

func TestBetweenBinding(t *testing.T) {
	p := build(t, "select sum(a1) from R where a2 between 5 and 10", testCat(), PolicyColumnLoads)
	pr := p.Tables[0].Conj.Preds[0]
	if !pr.Between || pr.Col != 1 || pr.Val.I != 5 || pr.Val2.I != 10 {
		t.Errorf("between pred = %+v", pr)
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, pol := range []Policy{PolicyFullLoad, PolicyColumnLoads, PolicyPartialV1, PolicyPartialV2, PolicySplitFiles, PolicyExternal, PolicyAuto} {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("round trip %v: %v, %v", pol, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy should fail")
	}
}

func TestPlanString(t *testing.T) {
	p := build(t, "select sum(a1) from R where a1 > 5", testCat(), PolicyColumnLoads)
	s := p.String()
	if !strings.Contains(s, "column-load") || !strings.Contains(s, "scan R") {
		t.Errorf("Plan.String = %q", s)
	}
}

func TestLoadOpString(t *testing.T) {
	for op, want := range map[LoadOp]string{
		LoadNone: "none", LoadFull: "full-load", LoadColumns: "column-load",
		LoadPartialEphemeral: "partial-load-v1", LoadPartialRetained: "partial-load-v2",
		LoadSplit: "split-load", LoadExternal: "external-scan",
	} {
		if op.String() != want {
			t.Errorf("LoadOp %d = %q, want %q", op, op.String(), want)
		}
	}
}
