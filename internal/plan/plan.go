// Package plan binds parsed SQL to table schemas and produces the physical
// plan the engine executes — including the paper's adaptive-load rewrite
// (§3.1.3): "after all optimization of the original query plan is finished,
// a new optimizer module/rule takes over to rewrite the optimized plan into
// a query plan that properly contains the new loading operators ... for
// each table referenced in the plan, the optimizer will add one adaptive
// load operator to bring in one go all missing columns or parts of them."
package plan

import (
	"fmt"
	"strings"

	"nodb/internal/exec"
	"nodb/internal/expr"
	"nodb/internal/scan"
	"nodb/internal/schema"
	"nodb/internal/sql"
)

// Policy selects how the engine brings raw data in. The names mirror the
// curves of the paper's figures.
type Policy int

// Loading policies.
const (
	// PolicyFullLoad loads the complete table on first touch (the
	// "MonetDB" behavior in Figures 3 and 4).
	PolicyFullLoad Policy = iota
	// PolicyColumnLoads loads whole missing columns on demand ("Column
	// Loads").
	PolicyColumnLoads
	// PolicyPartialV1 pushes selections into loading and retains nothing
	// ("Partial Loads" of Figure 3).
	PolicyPartialV1
	// PolicyPartialV2 retains qualifying values between queries ("Partial
	// Loads V2" of Figure 4).
	PolicyPartialV2
	// PolicySplitFiles loads columns through split files, cracking the
	// raw file as a side effect ("Split Files" of Figure 4).
	PolicySplitFiles
	// PolicyExternal re-parses the raw file for every query and caches
	// nothing at all (the "MySQL CSV engine" baseline).
	PolicyExternal
	// PolicyAuto self-tunes per column (the paper's §5.5 robustness
	// direction): queries start with retained partial loads, and a column
	// that keeps being touched — or whose sparse store grows past a
	// threshold — is promoted to a full column load, avoiding the
	// worst-case "N queries, N trips to the file" behavior.
	PolicyAuto
)

func (p Policy) String() string {
	switch p {
	case PolicyFullLoad:
		return "full"
	case PolicyColumnLoads:
		return "columns"
	case PolicyPartialV1:
		return "partial-v1"
	case PolicyPartialV2:
		return "partial-v2"
	case PolicySplitFiles:
		return "splitfiles"
	case PolicyExternal:
		return "external"
	case PolicyAuto:
		return "auto"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name (as printed by String) back.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "full", "monetdb":
		return PolicyFullLoad, nil
	case "columns", "columnloads":
		return PolicyColumnLoads, nil
	case "partial-v1", "partialv1", "v1":
		return PolicyPartialV1, nil
	case "partial-v2", "partialv2", "v2":
		return PolicyPartialV2, nil
	case "splitfiles", "split":
		return PolicySplitFiles, nil
	case "external", "csv":
		return PolicyExternal, nil
	case "auto":
		return PolicyAuto, nil
	default:
		return 0, fmt.Errorf("plan: unknown policy %q", s)
	}
}

// LoadOp is the adaptive load operator plugged into a table's scan.
type LoadOp int

// Load operators.
const (
	// LoadNone — all needed columns are already in the adaptive store.
	LoadNone LoadOp = iota
	// LoadFull — load the complete table before scanning.
	LoadFull
	// LoadColumns — load the missing needed columns fully.
	LoadColumns
	// LoadPartialEphemeral — selective load, discard after the query.
	LoadPartialEphemeral
	// LoadPartialRetained — selective load into the adaptive store.
	LoadPartialRetained
	// LoadSplit — column load through the split-file registry.
	LoadSplit
	// LoadExternal — selective read with no storage and no adaptive
	// store consultation at all.
	LoadExternal
	// LoadAuto — the engine decides per column at execution time:
	// partial load for cold columns, full column load for hot ones.
	LoadAuto
)

func (op LoadOp) String() string {
	switch op {
	case LoadNone:
		return "none"
	case LoadFull:
		return "full-load"
	case LoadColumns:
		return "column-load"
	case LoadPartialEphemeral:
		return "partial-load-v1"
	case LoadPartialRetained:
		return "partial-load-v2"
	case LoadSplit:
		return "split-load"
	case LoadExternal:
		return "external-scan"
	case LoadAuto:
		return "auto-load"
	default:
		return fmt.Sprintf("LoadOp(%d)", int(op))
	}
}

// CatalogInfo is what the planner needs to know about linked tables; the
// engine's catalog satisfies it.
type CatalogInfo interface {
	// TableSchema returns the schema of a linked table.
	TableSchema(name string) (*schema.Schema, error)
	// DenseAll reports whether all listed columns of the table are fully
	// loaded.
	DenseAll(name string, cols []int) bool
}

// TablePlan describes one table's scan: which columns execution needs, the
// bound single-table predicates, and the adaptive load operator the
// rewrite chose.
type TablePlan struct {
	Ordinal  int
	Name     string
	RefName  string
	Schema   *schema.Schema
	NeedCols []int
	Conj     expr.Conjunction
	LoadOp   LoadOp
	// Pins lists the columns whose adaptive structures (dense or sparse
	// state, plus the table's positional map and split files) execution
	// pins against governor eviction while the query runs: the needed
	// columns united with the predicate columns.
	Pins []int
}

// JoinEdge is one bound equi-join condition.
type JoinEdge struct {
	Left  exec.ColKey
	Right exec.ColKey
}

// Slot maps one select-list position to its source: an aggregate (index
// into Aggs) or a plain column (index into Project).
type Slot struct {
	Agg bool
	Idx int
}

// Plan is the bound, rewritten physical plan.
type Plan struct {
	Tables  []TablePlan
	Joins   []JoinEdge
	Aggs    []exec.AggSpec // empty for plain projections
	GroupBy []exec.ColKey
	Project []exec.ColKey // plain (or group-by key) output columns
	Slots   []Slot        // select-list order over Aggs/Project
	Output  []string      // output column names
	OrderBy []exec.SortKey
	Limit   int
}

// HasAggregates reports whether the plan computes aggregates.
func (p *Plan) HasAggregates() bool { return len(p.Aggs) > 0 }

// String renders the plan for EXPLAIN-style display.
func (p *Plan) String() string {
	var sb strings.Builder
	for _, t := range p.Tables {
		fmt.Fprintf(&sb, "scan %s (t%d) cols=%v load=%s pin=%v", t.Name, t.Ordinal, t.NeedCols, t.LoadOp, t.Pins)
		if !t.Conj.Empty() {
			fmt.Fprintf(&sb, " where %s", t.Conj.String())
		}
		sb.WriteByte('\n')
	}
	for _, j := range p.Joins {
		fmt.Fprintf(&sb, "hash join %v = %v\n", j.Left, j.Right)
	}
	if len(p.GroupBy) > 0 {
		fmt.Fprintf(&sb, "group by %v\n", p.GroupBy)
	}
	if len(p.Aggs) > 0 {
		fmt.Fprintf(&sb, "aggregate %d exprs\n", len(p.Aggs))
	}
	fmt.Fprintf(&sb, "output %v\n", p.Output)
	return sb.String()
}

// binder resolves names against the referenced tables.
type binder struct {
	stmt   *sql.SelectStmt
	tables []TablePlan
	need   []map[int]bool // per-ordinal needed columns
}

// Build binds stmt against the catalog and applies the adaptive-load
// rewrite for the given policy.
func Build(stmt *sql.SelectStmt, cat CatalogInfo, policy Policy) (*Plan, error) {
	b := &binder{stmt: stmt}

	addTable := func(ref sql.TableRef) error {
		sch, err := cat.TableSchema(ref.Name)
		if err != nil {
			return err
		}
		ord := len(b.tables)
		b.tables = append(b.tables, TablePlan{
			Ordinal: ord,
			Name:    ref.Name,
			RefName: ref.RefName(),
			Schema:  sch,
		})
		b.need = append(b.need, map[int]bool{})
		return nil
	}
	if err := addTable(stmt.From); err != nil {
		return nil, err
	}
	for _, j := range stmt.Joins {
		if err := addTable(j.Table); err != nil {
			return nil, err
		}
	}

	p := &Plan{Limit: stmt.Limit}

	// Bind joins.
	for _, j := range stmt.Joins {
		l, err := b.resolve(j.Left)
		if err != nil {
			return nil, err
		}
		r, err := b.resolve(j.Right)
		if err != nil {
			return nil, err
		}
		b.markNeed(l)
		b.markNeed(r)
		p.Joins = append(p.Joins, JoinEdge{Left: l, Right: r})
	}

	// Bind WHERE predicates (single-table by construction).
	if stmt.NumParams > 0 {
		return nil, fmt.Errorf("plan: statement has %d unbound parameters; bind arguments first", stmt.NumParams)
	}
	for _, pred := range stmt.Where {
		k, err := b.resolve(pred.Col)
		if err != nil {
			return nil, err
		}
		b.markNeed(k)
		bp := expr.Pred{Col: k.Col, Between: pred.Between}
		if pred.Between {
			bp.Val, bp.Val2 = pred.Lo, pred.Hi
		} else {
			op, err := bindOp(pred.Op)
			if err != nil {
				return nil, err
			}
			bp.Op = op
			bp.Val = pred.Val
		}
		b.tables[k.Tab].Conj.Preds = append(b.tables[k.Tab].Conj.Preds, bp)
	}

	// Bind the select list.
	if err := b.bindSelectList(p); err != nil {
		return nil, err
	}

	// Bind GROUP BY.
	for _, g := range stmt.GroupBy {
		k, err := b.resolve(g)
		if err != nil {
			return nil, err
		}
		b.markNeed(k)
		p.GroupBy = append(p.GroupBy, k)
	}
	if err := validateGrouping(p, stmt); err != nil {
		return nil, err
	}

	// Bind ORDER BY to output column positions.
	for _, o := range stmt.OrderBy {
		idx, err := b.outputIndex(p, o.Col)
		if err != nil {
			return nil, err
		}
		p.OrderBy = append(p.OrderBy, exec.SortKey{Index: idx, Desc: o.Desc})
	}

	// Finalize per-table needed columns and apply the adaptive-load
	// rewrite.
	for i := range b.tables {
		t := &b.tables[i]
		for c := range b.need[i] {
			t.NeedCols = append(t.NeedCols, c)
		}
		if len(t.NeedCols) == 0 {
			// count(*)-style plans still need one column to drive the
			// scan; the first is the cheapest to tokenize.
			t.NeedCols = []int{0}
		}
		sortInts(t.NeedCols)
		t.Pins = append([]int(nil), t.NeedCols...)
		for _, c := range t.Conj.Columns() {
			if !containsPin(t.Pins, c) {
				t.Pins = append(t.Pins, c)
			}
		}
		sortInts(t.Pins)
		t.LoadOp = rewriteLoadOp(policy, cat, t)
	}
	p.Tables = b.tables
	return p, nil
}

// rewriteLoadOp is the adaptive-load rewrite rule: given the policy and the
// adaptive store's current state, pick the load operator for one table.
func rewriteLoadOp(policy Policy, cat CatalogInfo, t *TablePlan) LoadOp {
	switch policy {
	case PolicyFullLoad:
		all := make([]int, t.Schema.NumCols())
		for i := range all {
			all[i] = i
		}
		if cat.DenseAll(t.Name, all) {
			return LoadNone
		}
		return LoadFull
	case PolicyColumnLoads:
		if cat.DenseAll(t.Name, t.NeedCols) {
			return LoadNone
		}
		return LoadColumns
	case PolicyPartialV1:
		return LoadPartialEphemeral
	case PolicyPartialV2:
		return LoadPartialRetained
	case PolicySplitFiles:
		if cat.DenseAll(t.Name, t.NeedCols) {
			return LoadNone
		}
		if t.Schema.Format != scan.FormatCSV {
			// Split files re-serialize rows as delimiter-separated column
			// groups — a CSV-only layout. Other formats degrade to plain
			// column loads.
			return LoadColumns
		}
		return LoadSplit
	case PolicyExternal:
		return LoadExternal
	case PolicyAuto:
		if cat.DenseAll(t.Name, t.NeedCols) {
			return LoadNone
		}
		return LoadAuto
	default:
		return LoadColumns
	}
}

func (b *binder) markNeed(k exec.ColKey) { b.need[k.Tab][k.Col] = true }

// resolve binds a column reference to (table ordinal, column index).
func (b *binder) resolve(c sql.ColRef) (exec.ColKey, error) {
	if c.Table != "" {
		for _, t := range b.tables {
			if strings.EqualFold(t.RefName, c.Table) || strings.EqualFold(t.Name, c.Table) {
				idx := t.Schema.ColIndex(c.Column)
				if idx < 0 {
					return exec.ColKey{}, fmt.Errorf("plan: table %s has no column %q", t.Name, c.Column)
				}
				return exec.ColKey{Tab: t.Ordinal, Col: idx}, nil
			}
		}
		return exec.ColKey{}, fmt.Errorf("plan: unknown table %q", c.Table)
	}
	found := exec.ColKey{Tab: -1}
	for _, t := range b.tables {
		if idx := t.Schema.ColIndex(c.Column); idx >= 0 {
			if found.Tab >= 0 {
				return exec.ColKey{}, fmt.Errorf("plan: column %q is ambiguous", c.Column)
			}
			found = exec.ColKey{Tab: t.Ordinal, Col: idx}
		}
	}
	if found.Tab < 0 {
		return exec.ColKey{}, fmt.Errorf("plan: unknown column %q", c.Column)
	}
	return found, nil
}

func bindOp(op string) (expr.CmpOp, error) {
	switch op {
	case "<":
		return expr.Lt, nil
	case "<=":
		return expr.Le, nil
	case ">":
		return expr.Gt, nil
	case ">=":
		return expr.Ge, nil
	case "=":
		return expr.Eq, nil
	case "<>":
		return expr.Ne, nil
	default:
		return 0, fmt.Errorf("plan: unsupported operator %q", op)
	}
}

func (b *binder) bindSelectList(p *Plan) error {
	for _, item := range b.stmt.Items {
		switch {
		case item.Star && item.Agg == sql.AggNone:
			// Expand * into every column of every table.
			for _, t := range b.tables {
				for ci, col := range t.Schema.Columns {
					k := exec.ColKey{Tab: t.Ordinal, Col: ci}
					b.markNeed(k)
					p.Slots = append(p.Slots, Slot{Agg: false, Idx: len(p.Project)})
					p.Project = append(p.Project, k)
					p.Output = append(p.Output, col.Name)
				}
			}
		case item.Agg == sql.AggNone:
			k, err := b.resolve(item.Col)
			if err != nil {
				return err
			}
			b.markNeed(k)
			p.Slots = append(p.Slots, Slot{Agg: false, Idx: len(p.Project)})
			p.Project = append(p.Project, k)
			p.Output = append(p.Output, item.Col.Column)
		case item.Star: // count(*)
			p.Slots = append(p.Slots, Slot{Agg: true, Idx: len(p.Aggs)})
			p.Aggs = append(p.Aggs, exec.AggSpec{Kind: sql.AggCount, Star: true})
			p.Output = append(p.Output, "count(*)")
		default:
			k, err := b.resolve(item.Col)
			if err != nil {
				return err
			}
			typ := b.tables[k.Tab].Schema.Columns[k.Col].Type
			if (item.Agg == sql.AggSum || item.Agg == sql.AggAvg) && typ == schema.String {
				return fmt.Errorf("plan: %s(%s) is not valid on a string column", item.Agg, item.Col)
			}
			b.markNeed(k)
			p.Slots = append(p.Slots, Slot{Agg: true, Idx: len(p.Aggs)})
			p.Aggs = append(p.Aggs, exec.AggSpec{Kind: item.Agg, Col: k})
			p.Output = append(p.Output, fmt.Sprintf("%s(%s)", item.Agg, item.Col.Column))
		}
	}
	return nil
}

// validateGrouping enforces the usual rule: with aggregates present, plain
// select items must be GROUP BY keys.
func validateGrouping(p *Plan, stmt *sql.SelectStmt) error {
	if len(p.Aggs) == 0 {
		if len(p.GroupBy) > 0 {
			return fmt.Errorf("plan: GROUP BY without aggregates is not supported")
		}
		return nil
	}
	if len(p.Project) == 0 {
		return nil
	}
	if len(p.GroupBy) == 0 {
		return fmt.Errorf("plan: mixing plain columns and aggregates requires GROUP BY")
	}
	for _, k := range p.Project {
		ok := false
		for _, g := range p.GroupBy {
			if g == k {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("plan: selected column %v is not in GROUP BY", k)
		}
	}
	return nil
}

// outputIndex finds the select-list position of an ORDER BY column: it
// must be one of the plain projected columns.
func (b *binder) outputIndex(p *Plan, c sql.ColRef) (int, error) {
	k, err := b.resolve(c)
	if err != nil {
		return 0, err
	}
	for i, s := range p.Slots {
		if !s.Agg && p.Project[s.Idx] == k {
			return i, nil
		}
	}
	return 0, fmt.Errorf("plan: ORDER BY column %q must appear in the select list", c.Column)
}

func containsPin(v []int, x int) bool {
	for _, c := range v {
		if c == x {
			return true
		}
	}
	return false
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
