package cracking

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naiveSelect returns the sorted values of vals in [lo, hi).
func naiveSelect(vals []int64, lo, hi int64) []int64 {
	var out []int64
	for _, v := range vals {
		if v >= lo && v < hi {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedCopy(v []int64) []int64 {
	out := append([]int64(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestSelectMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = rng.Int63n(500)
	}
	c := New(vals)
	for q := 0; q < 100; q++ {
		lo := rng.Int63n(500)
		hi := lo + rng.Int63n(100)
		a, b := c.Select(lo, hi)
		got := sortedCopy(c.Values(a, b))
		want := naiveSelect(vals, lo, hi)
		if len(got) != len(want) {
			t.Fatalf("query %d [%d,%d): got %d values, want %d", q, lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: value mismatch at %d: %d vs %d", q, i, got[i], want[i])
			}
		}
		if !c.CheckInvariant() {
			t.Fatalf("query %d: cracker invariant violated", q)
		}
	}
}

func TestRowIDsFollowValues(t *testing.T) {
	vals := []int64{50, 10, 40, 20, 30}
	c := New(vals)
	a, b := c.Select(15, 45)
	got := map[int64]int64{}
	for i, v := range c.Values(a, b) {
		got[c.RowIDs(a, b)[i]] = v
	}
	// rows 3 (20), 4 (30), 2 (40) qualify.
	want := map[int64]int64{3: 20, 4: 30, 2: 40}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for r, v := range want {
		if got[r] != v {
			t.Errorf("row %d = %d, want %d", r, got[r], v)
		}
	}
}

func TestRepeatedQueryNoRecrack(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = rng.Int63n(1000)
	}
	c := New(vals)
	c.Select(100, 200)
	n := c.Cracks()
	c.Select(100, 200) // same bounds: index hit, no partitioning
	if c.Cracks() != n {
		t.Errorf("repeated query re-cracked: %d -> %d", n, c.Cracks())
	}
}

func TestPiecesGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(5000)
	}
	c := New(vals)
	if c.Pieces() != 1 {
		t.Fatalf("fresh cracker pieces = %d, want 1", c.Pieces())
	}
	for q := 0; q < 20; q++ {
		lo := rng.Int63n(4000)
		c.Select(lo, lo+500)
	}
	if c.Pieces() < 10 {
		t.Errorf("pieces = %d after 20 distinct queries, want many", c.Pieces())
	}
	if !c.CheckInvariant() {
		t.Error("invariant violated")
	}
}

func TestSelectEdges(t *testing.T) {
	c := New([]int64{5, 1, 3})
	if a, b := c.Select(10, 10); a != b {
		t.Error("empty range should select nothing")
	}
	if a, b := c.Select(9, 2); a != b {
		t.Error("inverted range should select nothing")
	}
	a, b := c.Select(0, 100)
	if b-a != 3 {
		t.Errorf("full range selected %d values", b-a)
	}
	empty := New(nil)
	if a, b := empty.Select(0, 10); a != b {
		t.Error("empty cracker should select nothing")
	}
}

func TestSelectBoundarySemantics(t *testing.T) {
	c := New([]int64{10, 20, 30})
	a, b := c.Select(10, 30) // half-open: 10, 20 qualify; 30 does not
	got := sortedCopy(c.Values(a, b))
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("Select(10,30) = %v, want [10 20]", got)
	}
}

func TestDuplicateValues(t *testing.T) {
	vals := []int64{5, 5, 5, 1, 1, 9}
	c := New(vals)
	a, b := c.Select(5, 6)
	if b-a != 3 {
		t.Errorf("selected %d fives, want 3", b-a)
	}
}

func TestBaseUnchanged(t *testing.T) {
	vals := []int64{3, 1, 2}
	c := New(vals)
	c.Select(1, 3)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Error("cracker must operate on a copy")
	}
}

func TestQuickCrackerEquivalence(t *testing.T) {
	f := func(data []int16, bounds []int16) bool {
		vals := make([]int64, len(data))
		for i, d := range data {
			vals[i] = int64(d)
		}
		c := New(vals)
		for i := 0; i+1 < len(bounds); i += 2 {
			lo, hi := int64(bounds[i]), int64(bounds[i+1])
			if lo > hi {
				lo, hi = hi, lo
			}
			a, b := c.Select(lo, hi)
			got := sortedCopy(c.Values(a, b))
			want := naiveSelect(vals, lo, hi)
			if len(got) != len(want) {
				return false
			}
			for j := range got {
				if got[j] != want[j] {
					return false
				}
			}
			if !c.CheckInvariant() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// BenchmarkCrackedVsScan shows the adaptive-index speedup: after a few
// queries, cracked selects are much cheaper than full scans.
func BenchmarkCrackerSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 1_000_000)
	for i := range vals {
		vals[i] = rng.Int63n(1_000_000)
	}
	c := New(vals)
	b.ResetTimer()
	var sum int64
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(900_000)
		a, bb := c.Select(lo, lo+100_000)
		for _, v := range c.Values(a, bb) {
			sum += v
		}
	}
	_ = sum
}

func BenchmarkFullScanSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 1_000_000)
	for i := range vals {
		vals[i] = rng.Int63n(1_000_000)
	}
	b.ResetTimer()
	var sum int64
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(900_000)
		hi := lo + 100_000
		for _, v := range vals {
			if v >= lo && v < hi {
				sum += v
			}
		}
	}
	_ = sum
}
