// Package cracking implements database cracking — the adaptive indexing
// scheme behind the paper's "Index DB" curve (Figure 1, citing Idreos,
// Kersten & Manegold, CIDR 2007).
//
// A cracker column is a copy of a base column that gets physically
// reorganized as a side effect of the range selections that touch it: each
// query partitions the pieces its bounds fall into, so frequently queried
// ranges become contiguous and future selections scan ever smaller pieces.
// No up-front index is built; indexing effort follows the workload — the
// same philosophy the paper transfers to loading.
package cracking

import (
	"sort"

	"nodb/internal/metrics"
)

// Cracker is an adaptively indexed copy of an int64 column.
type Cracker struct {
	// Counters, when non-nil, receives internal-read accounting for the
	// bytes partitioning passes touch.
	Counters *metrics.Counters

	vals []int64
	rows []int64 // original row ids, permuted alongside vals
	// index: idxVals is sorted; all column positions < idxPos[i] hold
	// values < idxVals[i], and positions >= idxPos[i] hold values >=
	// idxVals[i]. This is the cracker index (an array stand-in for the
	// AVL tree of the original implementation; semantics are identical).
	idxVals []int64
	idxPos  []int
	cracks  int // total partitioning passes, for tests/stats
}

// New builds a cracker over a copy of vals; row ids are 0..len(vals)-1.
func New(vals []int64) *Cracker {
	rows := make([]int64, len(vals))
	for i := range rows {
		rows[i] = int64(i)
	}
	return NewWithRows(vals, rows)
}

// NewWithRows builds a cracker over copies of vals and their row ids.
// The two slices must have equal length.
func NewWithRows(vals, rows []int64) *Cracker {
	c := &Cracker{
		vals: append([]int64(nil), vals...),
		rows: append([]int64(nil), rows...),
	}
	return c
}

// Len returns the number of values.
func (c *Cracker) Len() int { return len(c.vals) }

// Cracks returns how many partitioning passes have run (two per new bound).
func (c *Cracker) Cracks() int { return c.cracks }

// Pieces returns the current number of pieces (index entries + 1).
func (c *Cracker) Pieces() int { return len(c.idxVals) + 1 }

// MemSize returns approximate heap bytes (the cracker column doubles the
// storage of the base column — the cost the paper's §4.2.1 mentions for
// replicated formats).
func (c *Cracker) MemSize() int64 {
	return int64(cap(c.vals)+cap(c.rows)+cap(c.idxVals))*8 + int64(cap(c.idxPos))*8
}

// Select returns the half-open position range [a, b) of the cracker column
// that holds exactly the values in [lo, hi), cracking the column at both
// bounds as a side effect. The returned positions index Values/RowIDs.
func (c *Cracker) Select(lo, hi int64) (a, b int) {
	if hi <= lo || len(c.vals) == 0 {
		return 0, 0
	}
	a = c.crack(lo)
	b = c.crack(hi)
	return a, b
}

// Values returns the value slice for a position range from Select. The
// slice aliases the cracker column: it is valid until the next Select.
func (c *Cracker) Values(a, b int) []int64 { return c.vals[a:b] }

// RowIDs returns the original row ids for a position range from Select,
// aliasing internal state like Values.
func (c *Cracker) RowIDs(a, b int) []int64 { return c.rows[a:b] }

// crack ensures a piece boundary at value v and returns its position: all
// positions before it hold values < v, all at or after hold >= v.
func (c *Cracker) crack(v int64) int {
	n := len(c.idxVals)
	i := sort.Search(n, func(i int) bool { return c.idxVals[i] >= v })
	if i < n && c.idxVals[i] == v {
		return c.idxPos[i]
	}
	// Piece [lo, hi) encloses v.
	lo, hi := 0, len(c.vals)
	if i > 0 {
		lo = c.idxPos[i-1]
	}
	if i < n {
		hi = c.idxPos[i]
	}
	p := lo + c.partition(lo, hi, v)
	// Insert (v, p) into the index at position i.
	c.idxVals = append(c.idxVals, 0)
	copy(c.idxVals[i+1:], c.idxVals[i:])
	c.idxVals[i] = v
	c.idxPos = append(c.idxPos, 0)
	copy(c.idxPos[i+1:], c.idxPos[i:])
	c.idxPos[i] = p
	return p
}

// partition reorders vals[lo:hi] so values < v precede values >= v,
// permuting rows identically; returns the split offset within the piece.
func (c *Cracker) partition(lo, hi int, v int64) int {
	c.cracks++
	if c.Counters != nil {
		c.Counters.AddInternalBytesRead(int64(hi-lo) * 16)
	}
	vals, rows := c.vals, c.rows
	i, j := lo, hi-1
	for {
		for i <= j && vals[i] < v {
			i++
		}
		for i <= j && vals[j] >= v {
			j--
		}
		if i >= j {
			break
		}
		vals[i], vals[j] = vals[j], vals[i]
		rows[i], rows[j] = rows[j], rows[i]
		i++
		j--
	}
	return i - lo
}

// CheckInvariant verifies every index entry partitions the column
// correctly. Tests call it; it is O(pieces × n).
func (c *Cracker) CheckInvariant() bool {
	for k, v := range c.idxVals {
		p := c.idxPos[k]
		for i := 0; i < p; i++ {
			if c.vals[i] >= v {
				return false
			}
		}
		for i := p; i < len(c.vals); i++ {
			if c.vals[i] < v {
				return false
			}
		}
	}
	return true
}
