package loader

import (
	"context"
	"fmt"
	"sync"

	"nodb/internal/catalog"
	"nodb/internal/exec"
	"nodb/internal/expr"
	"nodb/internal/scan"
	"nodb/internal/storage"
	"nodb/internal/synopsis"
)

// ScanRowsContext is the streaming form of PartialScanContext: it pushes
// the conjunction into tokenization and emits each qualifying row's outCols
// values (in outCols order) as soon as the row is parsed, instead of
// batching the whole pass into a View. Nothing is retained in the adaptive
// store.
//
// An error returned by emit aborts the scan mid-pass — after at most one
// more chunk of raw-file reads — and is returned as-is; that is the
// cursor's LIMIT/Close early-termination hook. The emitted value slice is
// freshly allocated per row; emit takes ownership. With Workers > 1, emit
// is called concurrently from multiple goroutines and must synchronize
// itself, and rows arrive out of file order.
//
// The table's row count is recorded only when the scan runs to completion;
// an aborted pass has not seen every row.
func (l *Loader) ScanRowsContext(ctx context.Context, t *catalog.Table, outCols []int, conj expr.Conjunction, emit func(rowID int64, vals []storage.Value) error) error {
	loadCols := neededWithPreds(outCols, conj)
	sch := t.Schema()
	for _, c := range loadCols {
		if c < 0 || c >= sch.NumCols() {
			return fmt.Errorf("loader: column %d out of range", c)
		}
	}
	// Position of each output column within the scanned columns.
	outAt := make([]int, len(outCols))
	for i, oc := range outCols {
		for j, lc := range loadCols {
			if lc == oc {
				outAt[i] = j
				break
			}
		}
	}

	predsAt := make([][]expr.Pred, len(loadCols))
	for i, c := range loadCols {
		predsAt[i] = conj.OnColumn(c)
	}

	ps, err := l.openPortioned(ctx, t, loadCols)
	if err != nil {
		return err
	}

	record := l.RecordPositions && t.PosMap != nil
	// Unlike PartialScan, the streaming path always pushes predicates
	// down (DisableEarlyAbandon is not honored here): it has no late
	// filter, so disabling the abandon hook would emit non-qualifying
	// rows. The ablation measures the buffered path.
	useAbandon := !conj.Empty()
	mkAbandon := func(pc *synopsis.PortionAcc) scan.AbandonFunc {
		return func(idx int, f scan.FieldRef) bool {
			if len(predsAt[idx]) == 0 {
				return false
			}
			v, err := parseField(f.Bytes, sch.Columns[loadCols[idx]].Type, sch.Format)
			if err != nil {
				return true // unparseable under predicate: treat as non-qualifying
			}
			pc.Observe(idx, v)
			for _, p := range predsAt[idx] {
				if !p.Eval(v) {
					return true
				}
			}
			return false
		}
	}

	mkHandler := func(pc *synopsis.PortionAcc) scan.RowHandler {
		return func(rowID int64, fields []scan.FieldRef) error {
			parsed := make([]storage.Value, len(loadCols))
			for i, f := range fields {
				v, err := parseField(f.Bytes, sch.Columns[loadCols[i]].Type, sch.Format)
				if err != nil {
					return fmt.Errorf("loader: row %d col %d: %w", rowID, loadCols[i], err)
				}
				parsed[i] = v
				if !useAbandon || len(predsAt[i]) == 0 {
					pc.Observe(i, v)
				}
			}
			if l.Counters != nil {
				l.Counters.AddValuesParsed(int64(len(fields)))
			}
			if record {
				for i, f := range fields {
					t.PosMap.Record(loadCols[i], rowID, f.Offset)
				}
			}
			vals := make([]storage.Value, len(outCols))
			for i, at := range outAt {
				vals[i] = parsed[at]
			}
			return emit(rowID, vals)
		}
	}

	ab := mkAbandon
	if !useAbandon {
		ab = nil
	}
	if err := ps.sc.ScanColumnsPortioned(loadCols, ps.funcs(conj, mkHandler, ab)); err != nil {
		return err
	}
	l.finish(ps, t)
	return nil
}

// ScanBatchesContext is ScanRowsContext's vectorized sibling: qualifying
// rows accumulate into column-oriented batches of batchSize rows (keyed
// under table ordinal tab), and emit receives each full batch plus the
// final partial one. Predicates are pushed into tokenization exactly as
// in the row form — emitted batches are post-filter, dense (no selection
// vector), and nothing is retained in the adaptive store.
//
// An emit error aborts the scan and is returned as-is (the LIMIT
// early-termination hook). emit is always called from the scan's own
// goroutines but never concurrently; with Workers > 1 rows land in
// batches out of file order.
func (l *Loader) ScanBatchesContext(ctx context.Context, t *catalog.Table, outCols []int, conj expr.Conjunction, tab, batchSize int, emit func(*exec.Batch) error) error {
	if batchSize <= 0 {
		batchSize = exec.DefaultBatchSize
	}
	sch := t.Schema()

	var mu sync.Mutex
	cols := make([]*storage.DenseColumn, len(outCols))
	reset := func() {
		for i, c := range outCols {
			cols[i] = storage.NewDense(sch.Columns[c].Type, batchSize)
		}
	}
	reset()
	n := 0
	flush := func() error {
		if n == 0 {
			return nil
		}
		b := &exec.Batch{N: n, Cols: make(map[exec.ColKey]*storage.DenseColumn, len(outCols))}
		for i, c := range outCols {
			b.Cols[exec.ColKey{Tab: tab, Col: c}] = cols[i]
		}
		reset()
		n = 0
		return emit(b)
	}

	err := l.ScanRowsContext(ctx, t, outCols, conj, func(rowID int64, vals []storage.Value) error {
		mu.Lock()
		defer mu.Unlock()
		for i, v := range vals {
			cols[i].Append(v)
		}
		n++
		if n >= batchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}
