package loader

import (
	"context"
	"fmt"

	"nodb/internal/catalog"
	"nodb/internal/expr"
	"nodb/internal/scan"
	"nodb/internal/storage"
	"nodb/internal/synopsis"
)

// ScanRowsContext is the streaming form of PartialScanContext: it pushes
// the conjunction into tokenization and emits each qualifying row's outCols
// values (in outCols order) as soon as the row is parsed, instead of
// batching the whole pass into a View. Nothing is retained in the adaptive
// store.
//
// An error returned by emit aborts the scan mid-pass — after at most one
// more chunk of raw-file reads — and is returned as-is; that is the
// cursor's LIMIT/Close early-termination hook. The emitted value slice is
// freshly allocated per row; emit takes ownership. With Workers > 1, emit
// is called concurrently from multiple goroutines and must synchronize
// itself, and rows arrive out of file order.
//
// The table's row count is recorded only when the scan runs to completion;
// an aborted pass has not seen every row.
func (l *Loader) ScanRowsContext(ctx context.Context, t *catalog.Table, outCols []int, conj expr.Conjunction, emit func(rowID int64, vals []storage.Value) error) error {
	loadCols := neededWithPreds(outCols, conj)
	sch := t.Schema()
	for _, c := range loadCols {
		if c < 0 || c >= sch.NumCols() {
			return fmt.Errorf("loader: column %d out of range", c)
		}
	}
	// Position of each output column within the scanned columns.
	outAt := make([]int, len(outCols))
	for i, oc := range outCols {
		for j, lc := range loadCols {
			if lc == oc {
				outAt[i] = j
				break
			}
		}
	}

	predsAt := make([][]expr.Pred, len(loadCols))
	for i, c := range loadCols {
		predsAt[i] = conj.OnColumn(c)
	}

	ps, err := l.openPortioned(ctx, t, loadCols)
	if err != nil {
		return err
	}

	record := l.RecordPositions && t.PosMap != nil
	// Unlike PartialScan, the streaming path always pushes predicates
	// down (DisableEarlyAbandon is not honored here): it has no late
	// filter, so disabling the abandon hook would emit non-qualifying
	// rows. The ablation measures the buffered path.
	useAbandon := !conj.Empty()
	mkAbandon := func(pc *synopsis.PortionAcc) scan.AbandonFunc {
		return func(idx int, f scan.FieldRef) bool {
			if len(predsAt[idx]) == 0 {
				return false
			}
			v, err := parseField(f.Bytes, sch.Columns[loadCols[idx]].Type)
			if err != nil {
				return true // unparseable under predicate: treat as non-qualifying
			}
			pc.Observe(idx, v)
			for _, p := range predsAt[idx] {
				if !p.Eval(v) {
					return true
				}
			}
			return false
		}
	}

	mkHandler := func(pc *synopsis.PortionAcc) scan.RowHandler {
		return func(rowID int64, fields []scan.FieldRef) error {
			parsed := make([]storage.Value, len(loadCols))
			for i, f := range fields {
				v, err := parseField(f.Bytes, sch.Columns[loadCols[i]].Type)
				if err != nil {
					return fmt.Errorf("loader: row %d col %d: %w", rowID, loadCols[i], err)
				}
				parsed[i] = v
				if !useAbandon || len(predsAt[i]) == 0 {
					pc.Observe(i, v)
				}
			}
			if l.Counters != nil {
				l.Counters.AddValuesParsed(int64(len(fields)))
			}
			if record {
				for i, f := range fields {
					t.PosMap.Record(loadCols[i], rowID, f.Offset)
				}
			}
			vals := make([]storage.Value, len(outCols))
			for i, at := range outAt {
				vals[i] = parsed[at]
			}
			return emit(rowID, vals)
		}
	}

	ab := mkAbandon
	if !useAbandon {
		ab = nil
	}
	if err := ps.sc.ScanColumnsPortioned(loadCols, ps.funcs(conj, mkHandler, ab)); err != nil {
		return err
	}
	l.finish(ps, t)
	return nil
}
