package loader

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"

	"nodb/internal/catalog"
	"nodb/internal/errs"
	"nodb/internal/scan"
	"nodb/internal/storage"
	"nodb/internal/vfs"
)

// tryPositionalColumnLoad loads the missing columns by jumping straight to
// a recorded anchor attribute in every row instead of tokenizing from the
// row start. It applies when the positional map covers some attribute
// j <= min(missing) for every row of the table; tokenization then costs
// (max(missing) - j + 1) attributes per row instead of (max(missing) + 1).
// Returns true when it handled the load.
//
// The anchor walk is CSV-specific (it delimiter-tokenizes rightward from
// the anchor); NDJSON tables dispatch to the direct-offset variant, whose
// recorded positions point at the value tokens themselves.
func (l *Loader) tryPositionalColumnLoad(ctx context.Context, t *catalog.Table, missing []int) bool {
	if t.Schema().Format == scan.FormatNDJSON {
		return l.tryPositionalColumnLoadJSON(ctx, t, missing)
	}
	pm := t.PosMap
	rows := t.NumRows()
	if pm == nil || rows <= 0 {
		return false
	}
	minCol := missing[0] // missing is sorted
	anchor := -1
	for _, c := range pm.CoveredCols() {
		if c <= minCol && c > anchor && pm.Covers(c, 0, rows) {
			anchor = c
		}
	}
	if anchor < 0 {
		return false
	}
	if anchor == 0 {
		// Tokenizing from the row start is what the plain scan does
		// anyway; no benefit.
		return false
	}
	_, offs := pm.Pairs(anchor)
	if int64(len(offs)) != rows {
		return false
	}

	sch := t.Schema()
	dense := make([]*storage.DenseColumn, len(missing))
	relCols := make([]int, len(missing))
	for i, c := range missing {
		dense[i] = storage.NewDenseSized(sch.Columns[c].Type, int(rows))
		relCols[i] = c - anchor
	}

	err := l.positionalScan(ctx, t.Path(), t.Schema().Delimiter, offs, relCols, func(rowID int64, fields []scan.FieldRef) error {
		for i, f := range fields {
			v, err := parseField(f.Bytes, sch.Columns[missing[i]].Type, sch.Format)
			if err != nil {
				return fmt.Errorf("loader: row %d col %d: %w", rowID, missing[i], err)
			}
			dense[i].Set(int(rowID), v)
		}
		if l.Counters != nil {
			l.Counters.AddValuesParsed(int64(len(fields)))
		}
		if l.RecordPositions {
			for i, f := range fields {
				t.PosMap.Record(missing[i], rowID, f.Offset)
			}
		}
		return nil
	})
	if err != nil {
		return false // fall back to the plain scan
	}

	var written int64
	for i, c := range missing {
		t.SetDense(c, dense[i])
		written += dense[i].MemSize()
	}
	if l.Counters != nil {
		l.Counters.AddInternalBytesWritten(written)
	}
	return true
}

// eachLineAt streams the file sequentially, handing fn the tail of each
// row starting at the given per-row offset (ascending) and running to the
// row's newline (CR stripped). It is the shared chassis of the positional
// loads: CSV tokenizes rightward from an anchor attribute, NDJSON
// delimits one value token in place.
func (l *Loader) eachLineAt(ctx context.Context, path string, offs []int64, fn func(rowID int64, off int64, line []byte) error) error {
	f, err := vfs.Default(l.FS).Open(path)
	if err != nil {
		return errs.Wrap(errs.ErrRawIO, "loader open", path, err)
	}
	defer f.Close()

	chunk := l.ChunkSize
	if chunk <= 0 {
		chunk = scan.DefaultChunkSize
	}
	buf := make([]byte, 0, chunk)
	var bufStart int64

	// refill loads the buffer so it covers [off, off+chunk). It doubles as
	// the cancellation checkpoint: one check per buffer refill costs
	// nothing next to the read itself.
	refill := func(off int64, minLen int) error {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("loader: %w", err)
			}
		}
		want := chunk
		if minLen > want {
			want = minLen
		}
		if cap(buf) < want {
			buf = make([]byte, 0, want)
		}
		buf = buf[:want]
		n, err := f.ReadAt(buf, off)
		buf = buf[:n]
		bufStart = off
		if l.Counters != nil {
			l.Counters.AddRawBytesRead(int64(n))
		}
		if err != nil && err != io.EOF {
			return errs.Wrap(errs.ErrRawIO, "loader read", path, err)
		}
		return nil
	}

	for rowID, off := range offs {
		// Ensure the line starting at off is in the buffer.
		var line []byte
		for attempt, want := 0, chunk; ; attempt, want = attempt+1, want*2 {
			if off < bufStart || off >= bufStart+int64(len(buf)) {
				if err := refill(off, want); err != nil {
					return err
				}
			}
			rel := int(off - bufStart)
			if nl := bytes.IndexByte(buf[rel:], '\n'); nl >= 0 {
				line = buf[rel : rel+nl]
				break
			}
			// Line extends past the buffer: refill bigger from off,
			// unless we already hold the file tail.
			if int64(len(buf)) < int64(want) && bufStart+int64(len(buf)) >= off { // EOF reached
				line = buf[rel:]
				break
			}
			if err := refill(off, want*2); err != nil {
				return err
			}
			rel = int(off - bufStart)
			if nl := bytes.IndexByte(buf[rel:], '\n'); nl >= 0 {
				line = buf[rel : rel+nl]
				break
			}
			if attempt > 30 {
				return fmt.Errorf("loader: row at offset %d exceeds buffer growth limit", off)
			}
		}
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if err := fn(int64(rowID), off, line); err != nil {
			return err
		}
	}
	return nil
}

// positionalScan streams the file sequentially but tokenizes each row from
// the given per-row anchor offset (ascending). relCols are attribute
// indices relative to the anchor attribute.
func (l *Loader) positionalScan(ctx context.Context, path string, delim byte, offs []int64, relCols []int, handler scan.RowHandler) error {
	sortedRel := append([]int(nil), relCols...)
	sort.Ints(sortedRel)
	fields := make([]scan.FieldRef, len(relCols))

	return l.eachLineAt(ctx, path, offs, func(rowID, off int64, line []byte) error {
		// Tokenize relCols within the line (relative attribute 0 starts
		// at position 0 of the anchor offset).
		fieldIdx, pos := 0, 0
		attrs := int64(0)
		for si, want := range sortedRel {
			for fieldIdx < want {
				i := bytes.IndexByte(line[pos:], delim)
				if i < 0 {
					return fmt.Errorf("loader: row %d too short for relative column %d", rowID, want)
				}
				pos += i + 1
				fieldIdx++
				attrs++
			}
			end := bytes.IndexByte(line[pos:], delim)
			var fb []byte
			if end < 0 {
				fb = line[pos:]
			} else {
				fb = line[pos : pos+end]
			}
			attrs++
			fr := scan.FieldRef{Bytes: fb, Offset: off + int64(pos)}
			for i, rc := range relCols {
				if rc == want {
					fields[i] = fr
				}
			}
			if end >= 0 && si+1 < len(sortedRel) {
				pos += end + 1
				fieldIdx++
			} else if end < 0 && si+1 < len(sortedRel) {
				return fmt.Errorf("loader: row %d ended before relative column %d", rowID, sortedRel[si+1])
			}
		}
		if l.Counters != nil {
			l.Counters.AddRowsTokenized(1)
			l.Counters.AddAttrsTokenized(attrs)
		}
		return handler(rowID, fields)
	})
}

// tryPositionalColumnLoadJSON loads missing NDJSON columns straight from
// recorded value-token offsets. NDJSON positions are per-field, not
// per-anchor: the map stores where each queried field's value token
// starts, learned on first touch, so a covered column loads by jumping to
// every offset and delimiting the token in place — no key scanning, no
// neighboring tokenization at all. Applies only when the map covers every
// missing column for every row; otherwise the plain scan runs.
func (l *Loader) tryPositionalColumnLoadJSON(ctx context.Context, t *catalog.Table, missing []int) bool {
	pm := t.PosMap
	rows := t.NumRows()
	if pm == nil || rows <= 0 {
		return false
	}
	for _, c := range missing {
		if !pm.Covers(c, 0, rows) {
			return false
		}
	}
	sch := t.Schema()
	dense := make([]*storage.DenseColumn, len(missing))
	for i, c := range missing {
		_, offs := pm.Pairs(c)
		if int64(len(offs)) != rows {
			return false
		}
		col := storage.NewDenseSized(sch.Columns[c].Type, int(rows))
		err := l.eachLineAt(ctx, t.Path(), offs, func(rowID, off int64, line []byte) error {
			end, err := scan.ScanJSONValue(line, 0)
			if err != nil {
				return fmt.Errorf("loader: row %d col %d: %w", rowID, c, err)
			}
			v, err := parseField(line[:end], sch.Columns[c].Type, sch.Format)
			if err != nil {
				return fmt.Errorf("loader: row %d col %d: %w", rowID, c, err)
			}
			col.Set(int(rowID), v)
			if l.Counters != nil {
				l.Counters.AddRowsTokenized(1)
				l.Counters.AddAttrsTokenized(1)
				l.Counters.AddValuesParsed(1)
			}
			return nil
		})
		if err != nil {
			return false // fall back to the plain scan
		}
		dense[i] = col
	}

	var written int64
	for i, c := range missing {
		t.SetDense(c, dense[i])
		written += dense[i].MemSize()
	}
	if l.Counters != nil {
		l.Counters.AddInternalBytesWritten(written)
	}
	return true
}
