package loader

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nodb/internal/catalog"
	"nodb/internal/csvgen"
	"nodb/internal/exec"
	"nodb/internal/expr"
	"nodb/internal/metrics"
	"nodb/internal/storage"
)

// testTable materializes content into a CSV and links it.
func testTable(t *testing.T, content string, opts catalog.Options) (*catalog.Table, *metrics.Counters) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var c metrics.Counters
	opts.Counters = &c
	if opts.SplitDir == "" {
		opts.SplitDir = filepath.Join(dir, "splits")
	}
	cat := catalog.New(opts)
	tab, err := cat.Link("T", path)
	if err != nil {
		t.Fatal(err)
	}
	return tab, &c
}

// genTable links a generated CSV.
func genTable(t *testing.T, spec csvgen.Spec, opts catalog.Options) (*catalog.Table, *metrics.Counters) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csv")
	if err := csvgen.WriteFile(path, spec); err != nil {
		t.Fatal(err)
	}
	var c metrics.Counters
	opts.Counters = &c
	if opts.SplitDir == "" {
		opts.SplitDir = filepath.Join(dir, "splits")
	}
	cat := catalog.New(opts)
	tab, err := cat.Link("G", path)
	if err != nil {
		t.Fatal(err)
	}
	return tab, &c
}

const smallCSV = "10,100,1000,5\n20,200,2000,6\n30,300,3000,7\n40,400,4000,8\n"

func TestColumnLoad(t *testing.T) {
	tab, c := testTable(t, smallCSV, catalog.Options{})
	l := &Loader{Counters: c}
	if err := l.ColumnLoad(tab, []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 {
		t.Errorf("rows = %d", tab.NumRows())
	}
	d0, d2 := tab.Dense(0), tab.Dense(2)
	if d0 == nil || d2 == nil {
		t.Fatal("columns not loaded")
	}
	if d0.Ints[0] != 10 || d0.Ints[3] != 40 {
		t.Errorf("col 0 = %v", d0.Ints)
	}
	if d2.Ints[1] != 2000 {
		t.Errorf("col 2 = %v", d2.Ints)
	}
	if tab.Dense(1) != nil || tab.Dense(3) != nil {
		t.Error("unrequested columns should not load")
	}
}

func TestColumnLoadCacheHit(t *testing.T) {
	tab, c := testTable(t, smallCSV, catalog.Options{})
	l := &Loader{Counters: c}
	if err := l.ColumnLoad(tab, []int{0}); err != nil {
		t.Fatal(err)
	}
	before := c.Snapshot()
	if err := l.ColumnLoad(tab, []int{0}); err != nil {
		t.Fatal(err)
	}
	delta := c.Snapshot().Sub(before)
	if delta.RawBytesRead != 0 {
		t.Errorf("cached column load read %d raw bytes", delta.RawBytesRead)
	}
	if delta.CacheHits != 1 {
		t.Errorf("CacheHits delta = %d", delta.CacheHits)
	}
}

func TestFullLoad(t *testing.T) {
	tab, c := testTable(t, smallCSV, catalog.Options{})
	l := &Loader{Counters: c}
	if err := l.FullLoad(tab); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if tab.Dense(i) == nil {
			t.Errorf("col %d not loaded by FullLoad", i)
		}
	}
	if s := c.Snapshot(); s.InternalBytesWritten == 0 {
		t.Error("loading should model binary-store writes")
	}
}

func TestColumnLoadFloatsAndStrings(t *testing.T) {
	tab, c := testTable(t, "1,2.5,abc\n2,3.5,def\n", catalog.Options{})
	l := &Loader{Counters: c}
	if err := l.FullLoad(tab); err != nil {
		t.Fatal(err)
	}
	if tab.Dense(1).Floats[1] != 3.5 {
		t.Errorf("float col = %v", tab.Dense(1).Floats)
	}
	if tab.Dense(2).Strs[0] != "abc" {
		t.Errorf("string col = %v", tab.Dense(2).Strs)
	}
}

func TestDenseSourceFor(t *testing.T) {
	tab, c := testTable(t, smallCSV, catalog.Options{})
	l := &Loader{Counters: c}
	if _, err := DenseSourceFor(tab, []int{0}, nil); err == nil {
		t.Error("unloaded column should error")
	}
	if err := l.ColumnLoad(tab, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	src, err := DenseSourceFor(tab, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumRows != 4 || src.Columns[1].Ints[2] != 300 {
		t.Errorf("source = %+v", src)
	}
}

func q2Conj(loLo, loHi, hiLo, hiHi int64) expr.Conjunction {
	return expr.Conjunction{Preds: []expr.Pred{
		{Col: 0, Op: expr.Gt, Val: storage.IntValue(loLo)},
		{Col: 0, Op: expr.Lt, Val: storage.IntValue(loHi)},
		{Col: 1, Op: expr.Gt, Val: storage.IntValue(hiLo)},
		{Col: 1, Op: expr.Lt, Val: storage.IntValue(hiHi)},
	}}
}

func TestPartialScan(t *testing.T) {
	// Rows: (10,100) (20,200) (30,300) (40,400); predicate selects rows
	// with a1 in (15,45) and a2 in (150,350) → rows 1,2.
	tab, c := testTable(t, smallCSV, catalog.Options{})
	l := &Loader{Counters: c}
	conj := q2Conj(15, 45, 150, 350)
	v, err := l.PartialScan(tab, []int{0, 1}, conj, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Fatalf("view Len = %d, want 2", v.Len())
	}
	if v.Rows[0] != 1 || v.Rows[1] != 2 {
		t.Errorf("rows = %v", v.Rows)
	}
	col0 := v.Col(exec.ColKey{Tab: 0, Col: 0})
	if col0.Ints[0] != 20 || col0.Ints[1] != 30 {
		t.Errorf("col0 = %v", col0.Ints)
	}
	// V1 semantics: nothing retained.
	if tab.Sparse(0, false) != nil || tab.Dense(0) != nil {
		t.Error("PartialScan must not store data")
	}
	if s := c.Snapshot(); s.RowsAbandoned == 0 {
		t.Error("non-qualifying rows should be abandoned early")
	}
}

func TestPartialScanProjectionBeyondPredicates(t *testing.T) {
	// Aggregate over col 3 with predicates on 0 and 1.
	tab, c := testTable(t, smallCSV, catalog.Options{})
	l := &Loader{Counters: c}
	conj := q2Conj(15, 45, 150, 350)
	v, err := l.PartialScan(tab, []int{3}, conj, 0)
	if err != nil {
		t.Fatal(err)
	}
	col3 := v.Col(exec.ColKey{Tab: 0, Col: 3})
	if col3 == nil || col3.Len() != 2 || col3.Ints[0] != 6 || col3.Ints[1] != 7 {
		t.Errorf("col3 = %+v", col3)
	}
	// Predicate columns ride along in the view.
	if v.Col(exec.ColKey{Tab: 0, Col: 0}) == nil {
		t.Error("predicate columns should be materialized too")
	}
}

func TestPartialLoadV2CacheFlow(t *testing.T) {
	tab, c := testTable(t, smallCSV, catalog.Options{})
	l := &Loader{Counters: c}
	conj := q2Conj(15, 45, 150, 350)

	v1, err := l.PartialLoadV2(tab, []int{0, 1}, conj, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Len() != 2 {
		t.Fatalf("first view Len = %d", v1.Len())
	}
	if tab.Sparse(0, false) == nil || tab.Sparse(0, false).Len() != 2 {
		t.Error("V2 must retain qualifying values")
	}

	// Identical query: served from the store, no raw reads.
	before := c.Snapshot()
	v2, err := l.PartialLoadV2(tab, []int{0, 1}, conj, 0)
	if err != nil {
		t.Fatal(err)
	}
	delta := c.Snapshot().Sub(before)
	if delta.RawBytesRead != 0 {
		t.Errorf("covered query read %d raw bytes", delta.RawBytesRead)
	}
	if delta.CacheHits != 1 {
		t.Errorf("CacheHits delta = %d", delta.CacheHits)
	}
	if v2.Len() != v1.Len() {
		t.Errorf("cached view Len = %d, want %d", v2.Len(), v1.Len())
	}

	// Narrower query: still covered; results must match a fresh scan.
	// Only row 1 (a1=20) qualifies under the narrower bound.
	narrow := q2Conj(15, 25, 150, 350)
	before = c.Snapshot()
	v3, err := l.PartialLoadV2(tab, []int{0, 1}, narrow, 0)
	if err != nil {
		t.Fatal(err)
	}
	delta = c.Snapshot().Sub(before)
	if delta.RawBytesRead != 0 {
		t.Error("narrower query should be served from the store")
	}
	if v3.Len() != 1 || v3.Rows[0] != 1 {
		t.Errorf("narrow view rows = %v", v3.Rows)
	}

	// Wider query: not covered; must go back to the file.
	wide := q2Conj(5, 45, 150, 350)
	before = c.Snapshot()
	v4, err := l.PartialLoadV2(tab, []int{0, 1}, wide, 0)
	if err != nil {
		t.Fatal(err)
	}
	delta = c.Snapshot().Sub(before)
	if delta.RawBytesRead == 0 {
		t.Error("wider query must re-read the raw file")
	}
	// Rows 1 and 2 qualify: row 0 fails the a2 lower bound (100 < 150).
	if v4.Len() != 2 {
		t.Errorf("wide view Len = %d, want 2", v4.Len())
	}
}

func TestPartialLoadV2DifferentColumnsNotCovered(t *testing.T) {
	tab, c := testTable(t, smallCSV, catalog.Options{})
	l := &Loader{Counters: c}
	conj := q2Conj(15, 45, 150, 350)
	if _, err := l.PartialLoadV2(tab, []int{0, 1}, conj, 0); err != nil {
		t.Fatal(err)
	}
	// Same predicates but now also needs column 3 → region lacks col 3.
	before := c.Snapshot()
	v, err := l.PartialLoadV2(tab, []int{0, 1, 3}, conj, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Snapshot().Sub(before).RawBytesRead == 0 {
		t.Error("query needing an unmaterialized column must hit the file")
	}
	if v.Col(exec.ColKey{Tab: 0, Col: 3}) == nil || v.Len() != 2 {
		t.Errorf("col3 missing or wrong rows: %d", v.Len())
	}
}

func TestPartialLoadV2MatchesPartialScan(t *testing.T) {
	spec := csvgen.Spec{Rows: 2000, Cols: 4, Seed: 3}
	tabA, ca := genTable(t, spec, catalog.Options{})
	tabB, cb := genTable(t, spec, catalog.Options{})
	la := &Loader{Counters: ca}
	lb := &Loader{Counters: cb}

	queries := []expr.Conjunction{
		q2Conj(100, 400, 500, 900),
		q2Conj(150, 350, 600, 800), // narrower: cache hit on B
		q2Conj(50, 500, 400, 1000), // wider: miss
		q2Conj(60, 480, 410, 950),  // narrower than previous: hit
	}
	for qi, conj := range queries {
		va, err := la.PartialScan(tabA, []int{0, 1}, conj, 0)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := lb.PartialLoadV2(tabB, []int{0, 1}, conj, 0)
		if err != nil {
			t.Fatal(err)
		}
		if va.Len() != vb.Len() {
			t.Fatalf("query %d: scan=%d v2=%d", qi, va.Len(), vb.Len())
		}
		c0 := exec.ColKey{Tab: 0, Col: 0}
		for i := range va.Rows {
			if va.Rows[i] != vb.Rows[i] || va.Value(c0, i).I != vb.Value(c0, i).I {
				t.Fatalf("query %d row %d differs", qi, i)
			}
		}
	}
}

func TestSplitColumnLoad(t *testing.T) {
	tab, c := testTable(t, smallCSV, catalog.Options{})
	l := &Loader{Counters: c}
	// First load: columns 0 and 1 → sidecars for 0,1; residual with 2,3.
	if err := l.SplitColumnLoad(tab, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if tab.Dense(0) == nil || tab.Dense(0).Ints[2] != 30 {
		t.Error("split load col 0 wrong")
	}
	if !tab.Splits.HasSidecar(0) || !tab.Splits.HasSidecar(1) {
		t.Error("sidecars not registered")
	}

	// Second load: column 3 must come from the residual file, not raw.
	rawSize := int64(len(smallCSV))
	before := c.Snapshot()
	if err := l.SplitColumnLoad(tab, []int{3}); err != nil {
		t.Fatal(err)
	}
	delta := c.Snapshot().Sub(before)
	if delta.RawBytesRead >= rawSize {
		t.Errorf("residual load read %d bytes, raw file is %d", delta.RawBytesRead, rawSize)
	}
	if tab.Dense(3) == nil || tab.Dense(3).Ints[1] != 6 {
		t.Errorf("col 3 = %+v", tab.Dense(3))
	}
	// Column 3's split registered a sidecar for 2 and 3 (residual had 2,3).
	if !tab.Splits.HasSidecar(2) || !tab.Splits.HasSidecar(3) {
		t.Error("second split should create sidecars for residual columns")
	}

	// Third: column 2 now loads from its tiny sidecar.
	before = c.Snapshot()
	if err := l.SplitColumnLoad(tab, []int{2}); err != nil {
		t.Fatal(err)
	}
	delta = c.Snapshot().Sub(before)
	if tab.Dense(2) == nil || tab.Dense(2).Ints[3] != 4000 {
		t.Errorf("col 2 = %+v", tab.Dense(2))
	}
	if delta.AttrsTokenized > 4 { // one attr per row
		t.Errorf("sidecar load tokenized %d attrs, want 4", delta.AttrsTokenized)
	}
}

func TestSplitColumnLoadMatchesColumnLoad(t *testing.T) {
	spec := csvgen.Spec{Rows: 3000, Cols: 6, Seed: 8}
	tabA, ca := genTable(t, spec, catalog.Options{})
	tabB, cb := genTable(t, spec, catalog.Options{})
	la := &Loader{Counters: ca}
	lb := &Loader{Counters: cb}
	// Load in awkward order: last column first (worst case per paper §4.2).
	for _, cols := range [][]int{{5}, {2, 3}, {0}, {1, 4}} {
		if err := la.ColumnLoad(tabA, cols); err != nil {
			t.Fatal(err)
		}
		if err := lb.SplitColumnLoad(tabB, cols); err != nil {
			t.Fatal(err)
		}
	}
	for col := 0; col < 6; col++ {
		da, db := tabA.Dense(col), tabB.Dense(col)
		if da == nil || db == nil {
			t.Fatalf("col %d not loaded", col)
		}
		for i := range da.Ints {
			if da.Ints[i] != db.Ints[i] {
				t.Fatalf("col %d row %d: plain=%d split=%d", col, i, da.Ints[i], db.Ints[i])
			}
		}
	}
	// The split path must have read fewer raw+split bytes on the later
	// loads than re-reading the whole raw file every time.
	sa, sb := ca.Snapshot(), cb.Snapshot()
	if sb.RawBytesRead+sb.SplitBytesRead >= sa.RawBytesRead*2 {
		t.Errorf("split path reads did not shrink: plain=%d split=%d+%d",
			sa.RawBytesRead, sb.RawBytesRead, sb.SplitBytesRead)
	}
}

func TestPositionalColumnLoad(t *testing.T) {
	// Wide rows make the anchor benefit visible in attr counts.
	spec := csvgen.Spec{Rows: 1000, Cols: 10, Seed: 4}
	tab, c := genTable(t, spec, catalog.Options{})
	l := &Loader{Counters: c, RecordPositions: true, UsePositions: true}

	// Load column 5: tokenizes 0..5 per row, records positions of col 5.
	if err := l.ColumnLoad(tab, []int{5}); err != nil {
		t.Fatal(err)
	}
	before := c.Snapshot()

	// Load column 8: anchor at col 5 → 4 attrs tokenized per row (5..8)
	// instead of 9 (0..8).
	if err := l.ColumnLoad(tab, []int{8}); err != nil {
		t.Fatal(err)
	}
	delta := c.Snapshot().Sub(before)
	if delta.AttrsTokenized > 5*1000 {
		t.Errorf("positional load tokenized %d attrs, want <= %d", delta.AttrsTokenized, 5*1000)
	}

	// Correctness: compare against a plain load.
	tab2, c2 := genTable(t, spec, catalog.Options{})
	l2 := &Loader{Counters: c2}
	if err := l2.ColumnLoad(tab2, []int{8}); err != nil {
		t.Fatal(err)
	}
	a, b := tab.Dense(8), tab2.Dense(8)
	for i := range a.Ints {
		if a.Ints[i] != b.Ints[i] {
			t.Fatalf("row %d: positional=%d plain=%d", i, a.Ints[i], b.Ints[i])
		}
	}
}

func TestPositionalLoadDisabled(t *testing.T) {
	spec := csvgen.Spec{Rows: 100, Cols: 6, Seed: 4}
	tab, c := genTable(t, spec, catalog.Options{})
	l := &Loader{Counters: c, RecordPositions: true, UsePositions: false}
	if err := l.ColumnLoad(tab, []int{3}); err != nil {
		t.Fatal(err)
	}
	before := c.Snapshot()
	if err := l.ColumnLoad(tab, []int{5}); err != nil {
		t.Fatal(err)
	}
	delta := c.Snapshot().Sub(before)
	if delta.AttrsTokenized < 6*100 {
		t.Errorf("without positions, load should tokenize from row start: %d", delta.AttrsTokenized)
	}
}

func TestLoaderHeaderFile(t *testing.T) {
	tab, c := testTable(t, "x,y\n1,10\n2,20\n", catalog.Options{})
	l := &Loader{Counters: c}
	if err := l.FullLoad(tab); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Errorf("rows = %d (header must not count)", tab.NumRows())
	}
	if tab.Dense(0).Ints[0] != 1 {
		t.Errorf("col x = %v", tab.Dense(0).Ints)
	}
	if tab.Schema().ColIndex("y") != 1 {
		t.Error("named column lookup")
	}
}

func TestPartialScanInvalidColumn(t *testing.T) {
	tab, c := testTable(t, smallCSV, catalog.Options{})
	l := &Loader{Counters: c}
	if _, err := l.PartialScan(tab, []int{99}, expr.Conjunction{}, 0); err == nil {
		t.Error("out-of-range column should error")
	}
}

func TestPartialScanNoPredicates(t *testing.T) {
	tab, c := testTable(t, smallCSV, catalog.Options{})
	l := &Loader{Counters: c}
	v, err := l.PartialScan(tab, []int{2}, expr.Conjunction{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4 {
		t.Errorf("unfiltered partial scan Len = %d", v.Len())
	}
}

func TestParseErrorsSurface(t *testing.T) {
	tab, c := testTable(t, "1,2\nx,4\n", catalog.Options{})
	// Schema detection widens col 0 to string, so force the issue by
	// loading col 1 (int) — fine — then check a busted file via direct
	// content where schema says int but a row is malformed. Build schema
	// with only ints then corrupt.
	l := &Loader{Counters: c}
	if err := l.ColumnLoad(tab, []int{1}); err != nil {
		t.Fatalf("valid column should load: %v", err)
	}
	// Col 0 is string-typed by detection; loads as strings fine.
	if err := l.ColumnLoad(tab, []int{0}); err != nil {
		t.Fatalf("string column should load: %v", err)
	}
	if tab.Dense(0).Strs[1] != "x" {
		t.Error("string fallback content wrong")
	}
}

func TestViewFromStoreMultiRegionPartialColumns(t *testing.T) {
	// Region 1 loads cols {0,1}; region 2 loads cols {0,2}. A query
	// needing {0,1} inside region 1 must not trip over rows loaded by
	// region 2 that lack col 1.
	tab, c := testTable(t, "1,10,100\n2,20,200\n3,30,300\n4,40,400\n", catalog.Options{})
	l := &Loader{Counters: c}

	conj1 := expr.Conjunction{Preds: []expr.Pred{
		{Col: 0, Op: expr.Le, Val: storage.IntValue(2)},
	}}
	if _, err := l.PartialLoadV2(tab, []int{0, 1}, conj1, 0); err != nil {
		t.Fatal(err)
	}
	conj2 := expr.Conjunction{Preds: []expr.Pred{
		{Col: 0, Op: expr.Ge, Val: storage.IntValue(3)},
	}}
	if _, err := l.PartialLoadV2(tab, []int{0, 2}, conj2, 0); err != nil {
		t.Fatal(err)
	}
	// Narrower than region 1, needing col 1.
	conj3 := expr.Conjunction{Preds: []expr.Pred{
		{Col: 0, Op: expr.Eq, Val: storage.IntValue(2)},
	}}
	v, err := l.PartialLoadV2(tab, []int{0, 1}, conj3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 1 || v.Value(exec.ColKey{Tab: 0, Col: 1}, 0).I != 20 {
		t.Errorf("multi-region view wrong: len=%d", v.Len())
	}
}

func TestSplitLoadRequiresRegistry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.csv")
	os.WriteFile(path, []byte("1,2\n"), 0o644)
	cat := catalog.New(catalog.Options{}) // no SplitDir
	tab, _ := cat.Link("X", path)
	l := &Loader{}
	if err := l.SplitColumnLoad(tab, []int{0}); err == nil {
		t.Error("split load without registry should error")
	}
}

// Build a quick sanity check that abandoned rows reduce parse work.
func TestEarlyAbandonReducesWork(t *testing.T) {
	var rows []string
	for i := 0; i < 1000; i++ {
		rows = append(rows, fmt.Sprintf("%d,%d,%d,%d", i, i*2, i*3, i*4))
	}
	content := strings.Join(rows, "\n") + "\n"

	run := func(conj expr.Conjunction) metrics.Snapshot {
		tab, c := testTable(t, content, catalog.Options{})
		l := &Loader{Counters: c}
		if _, err := l.PartialScan(tab, []int{0, 3}, conj, 0); err != nil {
			t.Fatal(err)
		}
		return c.Snapshot()
	}
	// 1% selective on col 0: almost every row abandoned at the first attr.
	selective := expr.Conjunction{Preds: []expr.Pred{
		{Col: 0, Op: expr.Lt, Val: storage.IntValue(10)},
	}}
	all := expr.Conjunction{}
	s1, s2 := run(selective), run(all)
	if s1.AttrsTokenized >= s2.AttrsTokenized {
		t.Errorf("selective scan should tokenize fewer attrs: %d vs %d",
			s1.AttrsTokenized, s2.AttrsTokenized)
	}
	if s1.ValuesParsed >= s2.ValuesParsed {
		t.Errorf("selective scan should parse fewer values: %d vs %d",
			s1.ValuesParsed, s2.ValuesParsed)
	}
}

func BenchmarkColumnLoad2of4_100k(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "b.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 100_000, Cols: 4, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	st, _ := os.Stat(path)
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cat := catalog.New(catalog.Options{})
		tab, err := cat.Link("B", path)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		l := &Loader{}
		if err := l.ColumnLoad(tab, []int{0, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartialScan10pct_100k(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "b.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 100_000, Cols: 4, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	cat := catalog.New(catalog.Options{})
	tab, err := cat.Link("B", path)
	if err != nil {
		b.Fatal(err)
	}
	conj := q2Conj(0, 10_000, 0, 90_000)
	l := &Loader{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.PartialScan(tab, []int{0, 1}, conj, 0); err != nil {
			b.Fatal(err)
		}
	}
}
