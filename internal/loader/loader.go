// Package loader implements the paper's adaptive loading operators
// (§3–§4): the pieces that bring data from raw flat files into the
// adaptive store, each with a different cost/benefit point:
//
//   - FullLoad — the classic DBMS behavior: load every column up front
//     (the MonetDB curve in Figures 3 and 4).
//   - ColumnLoad — load whole missing columns, triggered by the query that
//     needs them (the Column Loads curve).
//   - PartialScan — push the WHERE clause into loading, materialize only
//     qualifying values, keep nothing (Partial Loads V1).
//   - PartialLoadV2 — like PartialScan but qualifying values are retained
//     in sparse columns and a covered-region table of contents lets future
//     queries reuse them (Partial Loads V2).
//   - SplitColumnLoad — ColumnLoad through the split-file registry,
//     creating per-column files as a side effect (Split Files).
//
// All operators feed the positional map as a free side effect of
// tokenization, and exploit it to skip tokenization of leading attributes
// on later loads.
package loader

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"nodb/internal/catalog"
	"nodb/internal/exec"
	"nodb/internal/expr"
	"nodb/internal/metrics"
	"nodb/internal/scan"
	"nodb/internal/schema"
	"nodb/internal/storage"
	"nodb/internal/synopsis"
	"nodb/internal/vfs"
)

// Loader executes adaptive loading operators against catalog tables.
type Loader struct {
	// Counters receives work accounting; may be nil.
	Counters *metrics.Counters
	// Workers is the tokenization parallelism; 0 (the default) means one
	// worker per CPU, 1 (or negative) pins a sequential scan.
	Workers int
	// ChunkSize overrides the scan chunk size (default scan.DefaultChunkSize).
	ChunkSize int
	// RecordPositions feeds the table's positional map during loads.
	RecordPositions bool
	// UsePositions exploits the positional map to skip tokenization of
	// leading attributes when its coverage allows.
	UsePositions bool
	// DisableEarlyAbandon turns off predicate push-down into
	// tokenization: partial scans then tokenize and parse every requested
	// attribute of every row and filter afterwards (for ablations).
	DisableEarlyAbandon bool
	// UseSynopsis enables the per-portion scan synopsis (zone maps): every
	// tokenizing pass contributes per-portion min/max bounds as a free
	// byproduct, selective scans then skip portions whose bounds exclude
	// the predicate, and the learned portion layout replaces the
	// boundary-discovery pre-pass of later scans.
	UseSynopsis bool
	// FS is the filesystem raw files are read through; nil means the
	// real disk. Tests substitute a fault-injecting FS here.
	FS vfs.FS
}

// synFor returns the table's synopsis when collection is enabled.
func (l *Loader) synFor(t *catalog.Table) *synopsis.Synopsis {
	if !l.UseSynopsis {
		return nil
	}
	return t.Syn
}

// colTypes returns the schema types of cols, aligned.
func colTypes(sch *schema.Schema, cols []int) []schema.Type {
	out := make([]schema.Type, len(cols))
	for i, c := range cols {
		out[i] = sch.Columns[c].Type
	}
	return out
}

// sequentialScan reports whether a scan with this loader's settings will
// stream rows in file order from a single goroutine (append
// materialization) rather than scattering them by row id.
func (l *Loader) sequentialScan(ports []scan.PortionInfo) bool {
	return scan.EffectiveWorkers(l.Workers) == 1 || len(ports) <= 1
}

// portionedScan bundles the per-pass synopsis wiring every loading
// operator shares: a scanner that adopted the table's learned layout, the
// portion set, and the collector feeding bounds back to the synopsis.
type portionedScan struct {
	sc        *scan.Scanner
	syn       *synopsis.Synopsis
	collector *synopsis.Collector
	ports     []scan.PortionInfo
}

// openPortioned opens t's raw file for one pass over cols, wired to the
// table's synopsis: a learned layout replaces the boundary-discovery
// pre-pass (and Portioned makes a first pass build one worth
// remembering); with the synopsis disabled this degrades to a plain
// scanner with inert hooks. Layout read and adoption both go through the
// collector, whose generation pin discards them if the synopsis is
// dropped (file edited) mid-pass.
func (l *Loader) openPortioned(ctx context.Context, t *catalog.Table, cols []int) (*portionedScan, error) {
	syn := l.synFor(t)
	collector := synopsis.NewCollector(syn, cols, colTypes(t.Schema(), cols))
	opts := l.scanOpts(ctx, t)
	if syn != nil {
		opts.Layout = collector.Layout()
		opts.Portioned = true
	}
	sc, err := scan.Open(t.Path(), opts)
	if err != nil {
		return nil, err
	}
	ports, err := sc.Portions()
	if err != nil {
		return nil, err
	}
	collector.AdoptLayout(ports)
	return &portionedScan{
		sc:        sc,
		syn:       syn,
		collector: collector,
		ports:     ports,
	}, nil
}

// funcs assembles one pass' portion hooks: per-portion handler and
// abandon closures around the collector (mkAbandon may be nil), bound
// commits on portion end, and — when the synopsis can refute conj —
// portion skipping. Pass an empty conjunction for loads that must visit
// every row.
func (ps *portionedScan) funcs(conj expr.Conjunction, mkHandler func(*synopsis.PortionAcc) scan.RowHandler, mkAbandon func(*synopsis.PortionAcc) scan.AbandonFunc) scan.PortionFuncs {
	pf := scan.PortionFuncs{
		Begin: func(p scan.PortionInfo) (scan.RowHandler, scan.AbandonFunc) {
			pc := ps.collector.Begin(p)
			var ab scan.AbandonFunc
			if mkAbandon != nil {
				ab = mkAbandon(pc)
			}
			return mkHandler(pc), ab
		},
		End: func(p scan.PortionInfo, n int64) error {
			ps.collector.Commit(p, n)
			return nil
		},
	}
	if pr := ps.syn.Pruner(conj); pr != nil {
		pf.Skip = pr.Skip
	}
	return pf
}

// finish records a completed pass' row-count discovery — every row was
// tokenized exactly once or sat in a skipped portion of known size — and
// the synopsis-hit counter.
func (l *Loader) finish(ps *portionedScan, t *catalog.Table) {
	t.SetNumRows(ps.sc.RowsScanned() + ps.sc.RowsSkipped())
	if l.Counters != nil && ps.sc.PortionsSkipped() > 0 {
		l.Counters.AddSynopsisHit(1)
	}
}

func (l *Loader) scanOpts(ctx context.Context, t *catalog.Table) scan.Options {
	sch := t.Schema()
	return scan.Options{
		Delimiter:  sch.Delimiter,
		Format:     sch.Format,
		FieldNames: sch.FieldNames(),
		Workers:    l.Workers,
		ChunkSize:  l.ChunkSize,
		SkipHeader: sch.HasHeader,
		Counters:   l.Counters,
		Context:    ctx,
		FS:         l.FS,
	}
}

// parseField converts one raw field to a typed value. NDJSON fields are
// raw JSON tokens (delayed parsing leaves them untouched until here):
// strings unquote, numbers parse from their textual form, and composite
// values keep their raw JSON text.
func parseField(b []byte, typ schema.Type, format scan.Format) (storage.Value, error) {
	if format == scan.FormatNDJSON {
		switch typ {
		case schema.Int64:
			v, err := scan.ParseJSONInt64(b)
			if err != nil {
				return storage.Value{}, err
			}
			return storage.IntValue(v), nil
		case schema.Float64:
			v, err := scan.ParseJSONFloat64(b)
			if err != nil {
				return storage.Value{}, err
			}
			return storage.FloatValue(v), nil
		default:
			s, err := scan.ParseJSONString(b)
			if err != nil {
				return storage.Value{}, err
			}
			return storage.StringValue(s), nil
		}
	}
	switch typ {
	case schema.Int64:
		v, err := scan.ParseInt64(b)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.IntValue(v), nil
	case schema.Float64:
		v, err := scan.ParseFloat64(b)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.FloatValue(v), nil
	default:
		return storage.StringValue(string(b)), nil
	}
}

// FullLoad loads every column of the table (classic up-front loading).
func (l *Loader) FullLoad(t *catalog.Table) error {
	return l.FullLoadContext(context.Background(), t)
}

// FullLoadContext is FullLoad with cooperative cancellation.
func (l *Loader) FullLoadContext(ctx context.Context, t *catalog.Table) error {
	all := make([]int, t.Schema().NumCols())
	for i := range all {
		all[i] = i
	}
	return l.ColumnLoadContext(ctx, t, all)
}

// ColumnLoad fully loads the given columns from the raw file. Columns that
// are already dense are skipped; the rest are brought in with one scan
// (the paper's "one adaptive load operator to bring in one go all missing
// columns"). When the positional map covers an anchor attribute for every
// row, tokenization starts there instead of at the row start.
func (l *Loader) ColumnLoad(t *catalog.Table, cols []int) error {
	return l.ColumnLoadContext(context.Background(), t, cols)
}

// ColumnLoadContext is ColumnLoad with cooperative cancellation: a
// cancelled ctx aborts the underlying scan between chunks, leaving the
// table's loaded state untouched.
func (l *Loader) ColumnLoadContext(ctx context.Context, t *catalog.Table, cols []int) error {
	t.LockLoads()
	defer t.UnlockLoads()
	return l.columnLoadLocked(ctx, t, cols)
}

func (l *Loader) columnLoadLocked(ctx context.Context, t *catalog.Table, cols []int) error {
	missing := t.MissingDense(cols)
	if len(missing) == 0 {
		if l.Counters != nil {
			l.Counters.AddCacheHit(1)
		}
		return nil
	}
	if l.Counters != nil {
		l.Counters.AddCacheMiss(1)
	}
	sort.Ints(missing)

	if l.UsePositions && l.tryPositionalColumnLoad(ctx, t, missing) {
		return nil
	}

	ps, err := l.openPortioned(ctx, t, missing)
	if err != nil {
		return err
	}
	sc := ps.sc

	sch := t.Schema()
	sequential := l.sequentialScan(ps.ports)
	dense := make([]*storage.DenseColumn, len(missing))
	var rows int64
	if sequential {
		// Sequential scans stream rows in order: append as they arrive,
		// no counting pre-pass, the file is read exactly once.
		for i, c := range missing {
			dense[i] = storage.NewDense(sch.Columns[c].Type, 1024)
		}
	} else {
		// Parallel portions emit rows out of order; size the columns from
		// the phase-1 row count and scatter by row id.
		rows, err = sc.NumRows()
		if err != nil {
			return err
		}
		for i, c := range missing {
			dense[i] = storage.NewDenseSized(sch.Columns[c].Type, int(rows))
		}
	}

	var mu sync.Mutex // guards posmap batching only; dense sets are disjoint per row
	record := l.RecordPositions && t.PosMap != nil
	// A full column load observes every row, so each portion it completes
	// gains exact bounds for every loaded column — synopsis collection as
	// a free byproduct of work the load does anyway.
	mkHandler := func(pc *synopsis.PortionAcc) scan.RowHandler {
		return func(rowID int64, fields []scan.FieldRef) error {
			for i, f := range fields {
				v, err := parseField(f.Bytes, sch.Columns[missing[i]].Type, sch.Format)
				if err != nil {
					return fmt.Errorf("loader: row %d col %d: %w", rowID, missing[i], err)
				}
				pc.Observe(i, v)
				if sequential {
					dense[i].Append(v)
				} else {
					dense[i].Set(int(rowID), v)
				}
			}
			if l.Counters != nil {
				l.Counters.AddValuesParsed(int64(len(fields)))
			}
			if record {
				mu.Lock()
				for i, f := range fields {
					t.PosMap.Record(missing[i], rowID, f.Offset)
				}
				mu.Unlock()
			}
			return nil
		}
	}
	// Loads must visit every row (dense columns are complete), so no
	// conjunction is offered for pruning.
	if err := sc.ScanColumnsPortioned(missing, ps.funcs(expr.Conjunction{}, mkHandler, nil)); err != nil {
		return err
	}
	l.finish(ps, t)

	var written int64
	for i, c := range missing {
		t.SetDense(c, dense[i])
		written += dense[i].MemSize()
	}
	if l.Counters != nil {
		// Model the cost of writing the loaded columns to the engine's
		// binary store (what a DBMS pays when the load exceeds memory).
		l.Counters.AddInternalBytesWritten(written)
	}
	return nil
}

// DenseSourceFor assembles the executor's DenseSource over the listed
// columns; every column must be dense. counters may be nil.
func DenseSourceFor(t *catalog.Table, cols []int, counters *metrics.Counters) (exec.DenseSource, error) {
	src := exec.DenseSource{NumRows: t.NumRows(), Columns: map[int]*storage.DenseColumn{}, Counters: counters}
	for _, c := range cols {
		d := t.Dense(c)
		if d == nil {
			return exec.DenseSource{}, fmt.Errorf("loader: column %d of %s is not loaded", c, t.Name())
		}
		src.Columns[c] = d
	}
	return src, nil
}

// neededWithPreds returns the union of needCols and the conjunction's
// predicate columns, ascending and de-duplicated.
func neededWithPreds(needCols []int, conj expr.Conjunction) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range needCols {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, c := range conj.Columns() {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}
