// Package loader implements the paper's adaptive loading operators
// (§3–§4): the pieces that bring data from raw flat files into the
// adaptive store, each with a different cost/benefit point:
//
//   - FullLoad — the classic DBMS behavior: load every column up front
//     (the MonetDB curve in Figures 3 and 4).
//   - ColumnLoad — load whole missing columns, triggered by the query that
//     needs them (the Column Loads curve).
//   - PartialScan — push the WHERE clause into loading, materialize only
//     qualifying values, keep nothing (Partial Loads V1).
//   - PartialLoadV2 — like PartialScan but qualifying values are retained
//     in sparse columns and a covered-region table of contents lets future
//     queries reuse them (Partial Loads V2).
//   - SplitColumnLoad — ColumnLoad through the split-file registry,
//     creating per-column files as a side effect (Split Files).
//
// All operators feed the positional map as a free side effect of
// tokenization, and exploit it to skip tokenization of leading attributes
// on later loads.
package loader

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"nodb/internal/catalog"
	"nodb/internal/exec"
	"nodb/internal/expr"
	"nodb/internal/metrics"
	"nodb/internal/scan"
	"nodb/internal/schema"
	"nodb/internal/storage"
)

// Loader executes adaptive loading operators against catalog tables.
type Loader struct {
	// Counters receives work accounting; may be nil.
	Counters *metrics.Counters
	// Workers is the tokenization parallelism (default 1).
	Workers int
	// ChunkSize overrides the scan chunk size (default scan.DefaultChunkSize).
	ChunkSize int
	// RecordPositions feeds the table's positional map during loads.
	RecordPositions bool
	// UsePositions exploits the positional map to skip tokenization of
	// leading attributes when its coverage allows.
	UsePositions bool
	// DisableEarlyAbandon turns off predicate push-down into
	// tokenization: partial scans then tokenize and parse every requested
	// attribute of every row and filter afterwards (for ablations).
	DisableEarlyAbandon bool
}

func (l *Loader) scanOpts(ctx context.Context, t *catalog.Table) scan.Options {
	return scan.Options{
		Delimiter:  t.Schema().Delimiter,
		Workers:    l.Workers,
		ChunkSize:  l.ChunkSize,
		SkipHeader: t.Schema().HasHeader,
		Counters:   l.Counters,
		Context:    ctx,
	}
}

// parseField converts one raw field to a typed value.
func parseField(b []byte, typ schema.Type) (storage.Value, error) {
	switch typ {
	case schema.Int64:
		v, err := scan.ParseInt64(b)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.IntValue(v), nil
	case schema.Float64:
		v, err := scan.ParseFloat64(b)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.FloatValue(v), nil
	default:
		return storage.StringValue(string(b)), nil
	}
}

// FullLoad loads every column of the table (classic up-front loading).
func (l *Loader) FullLoad(t *catalog.Table) error {
	return l.FullLoadContext(context.Background(), t)
}

// FullLoadContext is FullLoad with cooperative cancellation.
func (l *Loader) FullLoadContext(ctx context.Context, t *catalog.Table) error {
	all := make([]int, t.Schema().NumCols())
	for i := range all {
		all[i] = i
	}
	return l.ColumnLoadContext(ctx, t, all)
}

// ColumnLoad fully loads the given columns from the raw file. Columns that
// are already dense are skipped; the rest are brought in with one scan
// (the paper's "one adaptive load operator to bring in one go all missing
// columns"). When the positional map covers an anchor attribute for every
// row, tokenization starts there instead of at the row start.
func (l *Loader) ColumnLoad(t *catalog.Table, cols []int) error {
	return l.ColumnLoadContext(context.Background(), t, cols)
}

// ColumnLoadContext is ColumnLoad with cooperative cancellation: a
// cancelled ctx aborts the underlying scan between chunks, leaving the
// table's loaded state untouched.
func (l *Loader) ColumnLoadContext(ctx context.Context, t *catalog.Table, cols []int) error {
	t.LockLoads()
	defer t.UnlockLoads()
	return l.columnLoadLocked(ctx, t, cols)
}

func (l *Loader) columnLoadLocked(ctx context.Context, t *catalog.Table, cols []int) error {
	missing := t.MissingDense(cols)
	if len(missing) == 0 {
		if l.Counters != nil {
			l.Counters.AddCacheHit(1)
		}
		return nil
	}
	if l.Counters != nil {
		l.Counters.AddCacheMiss(1)
	}
	sort.Ints(missing)

	if l.UsePositions && l.tryPositionalColumnLoad(ctx, t, missing) {
		return nil
	}

	sc, err := scan.Open(t.Path(), l.scanOpts(ctx, t))
	if err != nil {
		return err
	}

	sch := t.Schema()
	sequential := l.Workers <= 1
	dense := make([]*storage.DenseColumn, len(missing))
	var rows int64
	if sequential {
		// Sequential scans stream rows in order: append as they arrive,
		// no counting pre-pass, the file is read exactly once.
		for i, c := range missing {
			dense[i] = storage.NewDense(sch.Columns[c].Type, 1024)
		}
	} else {
		// Parallel portions emit rows out of order; size the columns from
		// the phase-1 row count and scatter by row id.
		rows, err = sc.NumRows()
		if err != nil {
			return err
		}
		for i, c := range missing {
			dense[i] = storage.NewDenseSized(sch.Columns[c].Type, int(rows))
		}
	}

	var mu sync.Mutex // guards posmap batching only; dense sets are disjoint per row
	record := l.RecordPositions && t.PosMap != nil
	err = sc.ScanColumns(missing, func(rowID int64, fields []scan.FieldRef) error {
		for i, f := range fields {
			v, err := parseField(f.Bytes, sch.Columns[missing[i]].Type)
			if err != nil {
				return fmt.Errorf("loader: row %d col %d: %w", rowID, missing[i], err)
			}
			if sequential {
				dense[i].Append(v)
			} else {
				dense[i].Set(int(rowID), v)
			}
		}
		if l.Counters != nil {
			l.Counters.AddValuesParsed(int64(len(fields)))
		}
		if record {
			mu.Lock()
			for i, f := range fields {
				t.PosMap.Record(missing[i], rowID, f.Offset)
			}
			mu.Unlock()
		}
		return nil
	}, nil)
	if err != nil {
		return err
	}
	if sequential {
		rows = sc.RowsScanned()
	}
	t.SetNumRows(rows)

	var written int64
	for i, c := range missing {
		t.SetDense(c, dense[i])
		written += dense[i].MemSize()
	}
	if l.Counters != nil {
		// Model the cost of writing the loaded columns to the engine's
		// binary store (what a DBMS pays when the load exceeds memory).
		l.Counters.AddInternalBytesWritten(written)
	}
	return nil
}

// DenseSourceFor assembles the executor's DenseSource over the listed
// columns; every column must be dense. counters may be nil.
func DenseSourceFor(t *catalog.Table, cols []int, counters *metrics.Counters) (exec.DenseSource, error) {
	src := exec.DenseSource{NumRows: t.NumRows(), Columns: map[int]*storage.DenseColumn{}, Counters: counters}
	for _, c := range cols {
		d := t.Dense(c)
		if d == nil {
			return exec.DenseSource{}, fmt.Errorf("loader: column %d of %s is not loaded", c, t.Name())
		}
		src.Columns[c] = d
	}
	return src, nil
}

// neededWithPreds returns the union of needCols and the conjunction's
// predicate columns, ascending and de-duplicated.
func neededWithPreds(needCols []int, conj expr.Conjunction) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range needCols {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, c := range conj.Columns() {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}
