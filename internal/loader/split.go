package loader

import (
	"context"
	"fmt"
	"sort"

	"nodb/internal/catalog"
	"nodb/internal/scan"
	"nodb/internal/splitfile"
	"nodb/internal/storage"
)

// SplitColumnLoad loads the given columns like ColumnLoad, but reads
// through the split-file registry and *cracks the file* as a side effect:
// every attribute the load tokenizes is written out as its own sidecar
// file, and the un-tokenized tail of each row goes to a residual file
// (paper §4.2). Later loads of already-split attributes read only their
// sidecar; loads of un-split attributes read only the residual file, which
// keeps shrinking as splits recurse.
func (l *Loader) SplitColumnLoad(t *catalog.Table, cols []int) error {
	return l.SplitColumnLoadContext(context.Background(), t, cols)
}

// SplitColumnLoadContext is SplitColumnLoad with cooperative cancellation.
// Cancellation is checked between source groups and inside each scan; a
// partially written split file is closed and not registered.
func (l *Loader) SplitColumnLoadContext(ctx context.Context, t *catalog.Table, cols []int) error {
	if t.Splits == nil {
		return fmt.Errorf("loader: table %s has no split registry (set SplitDir)", t.Name())
	}
	t.LockLoads()
	defer t.UnlockLoads()
	missing := t.MissingDense(cols)
	if len(missing) == 0 {
		if l.Counters != nil {
			l.Counters.AddCacheHit(1)
		}
		return nil
	}
	if l.Counters != nil {
		l.Counters.AddCacheMiss(1)
	}
	sort.Ints(missing)

	// Group the missing columns by the source file that currently holds
	// them.
	type group struct {
		src    splitfile.Source
		locals []int // local column indices within src
		origs  []int // original attribute ids, aligned with locals
	}
	groups := map[string]*group{}
	var order []string
	for _, c := range missing {
		src := t.Splits.Lookup(c)
		g := groups[src.Path]
		if g == nil {
			g = &group{src: src}
			groups[src.Path] = g
			order = append(order, src.Path)
		}
		g.locals = append(g.locals, src.LocalCol)
		g.origs = append(g.origs, c)
	}

	for _, p := range order {
		g := groups[p]
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("loader: %w", err)
		}
		if err := l.loadGroup(ctx, t, g.src, g.locals, g.origs); err != nil {
			return err
		}
	}
	return nil
}

// loadGroup loads origs (attribute ids) from one source file whose local
// column indices are locals. Multi-column sources are split as a side
// effect.
func (l *Loader) loadGroup(ctx context.Context, t *catalog.Table, src splitfile.Source, locals, origs []int) error {
	sch := t.Schema()
	opts := scan.Options{
		Delimiter: sch.Delimiter,
		// Splitting requires rows in file order; keep one worker. Sidecar
		// reads have no ordering side effects but are single-column and
		// cheap anyway.
		Workers:    1,
		ChunkSize:  l.ChunkSize,
		SkipHeader: src.Raw && sch.HasHeader,
		Counters:   l.Counters,
		Context:    ctx,
		FS:         l.FS,
	}
	sc, err := scan.Open(src.Path, opts)
	if err != nil {
		return err
	}

	// The scan is sequential (one worker), so columns fill by appending;
	// the row count falls out of the scan itself.
	dense := make([]*storage.DenseColumn, len(origs))
	for i, c := range origs {
		dense[i] = storage.NewDense(sch.Columns[c].Type, 1024)
	}
	// parseAt[i] is the index in origs to parse for tokenized local column
	// i, or -1 when the column is tokenized only for splitting.
	maxLocal := 0
	for _, lc := range locals {
		if lc > maxLocal {
			maxLocal = lc
		}
	}

	if len(src.Cols) == 1 {
		// Single-column sidecar: a plain scan, no splitting needed.
		return l.loadSidecar(t, sc, src, origs[0], dense[0])
	}

	plan := splitfile.PlanSplit(src, locals)
	w, err := t.Splits.NewWriter(plan)
	if err != nil {
		return err
	}
	// Tokenize all local columns 0..maxLocal: the tokenizer passes over
	// them anyway; capturing them makes them sidecars for free.
	tokCols := make([]int, maxLocal+1)
	for i := range tokCols {
		tokCols[i] = i
	}
	parseAt := make([]int, maxLocal+1)
	for i := range parseAt {
		parseAt[i] = -1
	}
	for i, lc := range locals {
		parseAt[lc] = i
	}

	fieldBytes := make([][]byte, maxLocal+1)
	splitErr := error(nil)
	err = sc.ScanColumnsTail(tokCols, func(rowID int64, fields []scan.FieldRef, tail scan.FieldRef) error {
		parsed := int64(0)
		for i, f := range fields {
			if pi := parseAt[i]; pi >= 0 {
				v, err := parseField(f.Bytes, sch.Columns[origs[pi]].Type, sch.Format)
				if err != nil {
					return fmt.Errorf("loader: row %d col %d: %w", rowID, origs[pi], err)
				}
				dense[pi].Append(v)
				parsed++
			}
			fieldBytes[i] = f.Bytes
		}
		if l.Counters != nil {
			l.Counters.AddValuesParsed(parsed)
		}
		if splitErr == nil {
			splitErr = w.WriteRow(fieldBytes, tail.Bytes)
		}
		return nil
	}, nil)
	if err != nil {
		w.Abort() // the feed stopped early; the files hold a prefix
		return err
	}
	if splitErr != nil {
		w.Abort()
		return splitErr
	}
	// Validate row alignment before registering: a source that disagrees
	// with the table's row count must not contribute split files.
	if err := l.checkSplitRows(t, src, sc.RowsScanned()); err != nil {
		w.Abort()
		if !src.Raw {
			t.Splits.Drop() // the existing split set is misaligned too
		}
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	var written int64
	for i, c := range origs {
		t.SetDense(c, dense[i])
		written += dense[i].MemSize()
	}
	if l.Counters != nil {
		l.Counters.AddInternalBytesWritten(written)
	}
	return nil
}

// checkSplitRows validates that a split source agrees with the table's row
// count and records it when unknown.
func (l *Loader) checkSplitRows(t *catalog.Table, src splitfile.Source, rows int64) error {
	if tr := t.NumRows(); tr >= 0 && tr != rows {
		return fmt.Errorf("loader: source %s has %d rows, table has %d", src.Path, rows, tr)
	}
	t.SetNumRows(rows)
	return nil
}

// loadSidecar loads one attribute from its single-column split file.
func (l *Loader) loadSidecar(t *catalog.Table, sc *scan.Scanner, src splitfile.Source, orig int, dense *storage.DenseColumn) error {
	sch := t.Schema()
	err := sc.ScanColumns([]int{0}, func(rowID int64, fields []scan.FieldRef) error {
		v, err := parseField(fields[0].Bytes, sch.Columns[orig].Type, sch.Format)
		if err != nil {
			return fmt.Errorf("loader: sidecar %s row %d: %w", src.Path, rowID, err)
		}
		dense.Append(v)
		if l.Counters != nil {
			l.Counters.AddValuesParsed(1)
		}
		return nil
	}, nil)
	if err != nil {
		return err
	}
	if err := l.checkSplitRows(t, src, sc.RowsScanned()); err != nil {
		// The registered sidecar is row-misaligned with the table; a
		// truncated or stale split set self-heals by rebuilding from raw.
		t.Splits.Drop()
		return err
	}
	t.SetDense(orig, dense)
	if l.Counters != nil {
		l.Counters.AddInternalBytesWritten(dense.MemSize())
	}
	return nil
}
