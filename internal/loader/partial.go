package loader

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"nodb/internal/catalog"
	"nodb/internal/exec"
	"nodb/internal/expr"
	"nodb/internal/intervals"
	"nodb/internal/scan"
	"nodb/internal/schema"
	"nodb/internal/storage"
	"nodb/internal/synopsis"
)

// rowBatch accumulates qualifying rows from a (possibly parallel) partial
// scan, then emits them in row order.
type rowBatch struct {
	mu   sync.Mutex
	rows []int64
	vals [][]storage.Value // aligned with rows; one value per loaded column
}

func (b *rowBatch) add(row int64, vals []storage.Value) {
	b.mu.Lock()
	b.rows = append(b.rows, row)
	b.vals = append(b.vals, vals)
	b.mu.Unlock()
}

// sorted returns the permutation that orders rows ascending.
func (b *rowBatch) sort() {
	perm := make([]int, len(b.rows))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return b.rows[perm[i]] < b.rows[perm[j]] })
	rows := make([]int64, len(b.rows))
	vals := make([][]storage.Value, len(b.vals))
	for i, p := range perm {
		rows[i] = b.rows[p]
		vals[i] = b.vals[p]
	}
	b.rows, b.vals = rows, vals
}

// PartialScan is the Partial Loads operator: it pushes the conjunction into
// tokenization (abandoning a row the moment a predicate fails), parses and
// materializes only needCols of qualifying rows, and returns them as a
// View. Nothing is stored in the adaptive store — this is V1's "throw the
// data away immediately after every query" behavior; V2 layers retention
// on top.
func (l *Loader) PartialScan(t *catalog.Table, needCols []int, conj expr.Conjunction, tab int) (*exec.View, error) {
	return l.PartialScanContext(context.Background(), t, needCols, conj, tab)
}

// PartialScanContext is PartialScan with cooperative cancellation: a
// cancelled ctx aborts tokenization between chunks and the partial result
// is discarded.
func (l *Loader) PartialScanContext(ctx context.Context, t *catalog.Table, needCols []int, conj expr.Conjunction, tab int) (*exec.View, error) {
	loadCols := neededWithPreds(needCols, conj)
	sch := t.Schema()
	for _, c := range loadCols {
		if c < 0 || c >= sch.NumCols() {
			return nil, fmt.Errorf("loader: column %d out of range", c)
		}
	}

	// Predicates indexed by position in loadCols for the abandon hook.
	predsAt := make([][]expr.Pred, len(loadCols))
	for i, c := range loadCols {
		predsAt[i] = conj.OnColumn(c)
	}

	ps, err := l.openPortioned(ctx, t, loadCols)
	if err != nil {
		return nil, err
	}

	batch := &rowBatch{}
	record := l.RecordPositions && t.PosMap != nil

	// Synopsis observation rides on parses that happen anyway: with early
	// abandon active, the abandon hook observes the predicate columns it
	// parses for evaluation (the first predicate column is seen for every
	// row, so it always earns full-portion bounds) and the handler
	// observes the remaining columns of surviving rows (earning bounds
	// only on passes where every row survives). Without early abandon,
	// every row reaches the handler and it observes everything.
	useAbandon := !l.DisableEarlyAbandon && !conj.Empty()

	// The abandon hook parses predicate columns to evaluate them; the
	// handler re-parses. The duplicate parse touches only the (few)
	// predicate columns of the (few) qualifying rows and keeps the hook
	// stateless, which matters because portions run on separate
	// goroutines.
	mkAbandon := func(pc *synopsis.PortionAcc) scan.AbandonFunc {
		return func(idx int, f scan.FieldRef) bool {
			if len(predsAt[idx]) == 0 {
				return false
			}
			// Parse once, remember for the handler.
			v, err := parseField(f.Bytes, sch.Columns[loadCols[idx]].Type, sch.Format)
			if err != nil {
				return true // unparseable under predicate: treat as non-qualifying
			}
			pc.Observe(idx, v)
			for _, p := range predsAt[idx] {
				if !p.Eval(v) {
					return true
				}
			}
			return false
		}
	}

	lateFilter := l.DisableEarlyAbandon && !conj.Empty()
	mkHandler := func(pc *synopsis.PortionAcc) scan.RowHandler {
		return func(rowID int64, fields []scan.FieldRef) error {
			vals := make([]storage.Value, len(loadCols))
			for i, f := range fields {
				v, err := parseField(f.Bytes, sch.Columns[loadCols[i]].Type, sch.Format)
				if err != nil {
					return fmt.Errorf("loader: row %d col %d: %w", rowID, loadCols[i], err)
				}
				vals[i] = v
				if !useAbandon || len(predsAt[i]) == 0 {
					pc.Observe(i, v)
				}
			}
			if l.Counters != nil {
				l.Counters.AddValuesParsed(int64(len(fields)))
			}
			if record {
				for i, f := range fields {
					t.PosMap.Record(loadCols[i], rowID, f.Offset)
				}
			}
			if lateFilter {
				ok := conj.EvalRow(func(col int) storage.Value {
					for i, c := range loadCols {
						if c == col {
							return vals[i]
						}
					}
					return storage.Value{}
				})
				if !ok {
					return nil
				}
			}
			batch.add(rowID, vals)
			return nil
		}
	}

	// Portion pruning rides on funcs: portions whose recorded bounds
	// exclude the conjunction are skipped — a skipped portion provably
	// holds no qualifying row, so results are identical to an unpruned
	// pass.
	ab := mkAbandon
	if !useAbandon {
		ab = nil
	}
	if err := ps.sc.ScanColumnsPortioned(loadCols, ps.funcs(conj, mkHandler, ab)); err != nil {
		return nil, err
	}
	l.finish(ps, t)
	batch.sort()
	return viewFromBatch(batch, loadCols, sch, tab), nil
}

func viewFromBatch(b *rowBatch, loadCols []int, sch *schema.Schema, tab int) *exec.View {
	v := exec.NewView()
	v.Rows = b.rows
	for i, c := range loadCols {
		col := storage.NewDense(sch.Columns[c].Type, len(b.rows))
		for _, vals := range b.vals {
			col.Append(vals[i])
		}
		v.AddCol(exec.ColKey{Tab: tab, Col: c}, col)
	}
	return v
}

// queryRegion builds the region describing this query: per-predicate-column
// exact value ranges plus the set of materialized columns. ok is false
// when the region is not representable (non-int predicate column or a <>
// predicate) — V2 then skips region bookkeeping for this query.
func queryRegion(t *catalog.Table, loadCols []int, conj expr.Conjunction) (catalog.Region, bool) {
	sch := t.Schema()
	r := catalog.Region{Ranges: map[int]intervals.Interval{}, Cols: append([]int(nil), loadCols...)}
	sort.Ints(r.Cols)
	for _, c := range conj.Columns() {
		if sch.Columns[c].Type != schema.Int64 {
			return catalog.Region{}, false
		}
		iv, exact := conj.IntRange(c)
		if !exact {
			return catalog.Region{}, false
		}
		r.Ranges[c] = iv
	}
	return r, true
}

// PartialLoadV2 is the retaining variant: when the adaptive store's
// recorded regions cover the query, it is answered from the sparse columns
// without touching the raw file; otherwise a PartialScan runs, its rows are
// merged into the sparse columns, and the query's region is recorded for
// future reuse.
func (l *Loader) PartialLoadV2(t *catalog.Table, needCols []int, conj expr.Conjunction, tab int) (*exec.View, error) {
	return l.PartialLoadV2Context(context.Background(), t, needCols, conj, tab)
}

// PartialLoadV2Context is PartialLoadV2 with cooperative cancellation. A
// cancelled scan merges nothing and records no region, so the adaptive
// store never sees a half-loaded query's state.
func (l *Loader) PartialLoadV2Context(ctx context.Context, t *catalog.Table, needCols []int, conj expr.Conjunction, tab int) (*exec.View, error) {
	// Coverage check, scan, merge and region recording must be atomic
	// with respect to other loads on this table (§5.4).
	t.LockLoads()
	defer t.UnlockLoads()

	loadCols := neededWithPreds(needCols, conj)
	q, representable := queryRegion(t, loadCols, conj)

	if representable {
		// StoreBacked guards against an eviction that raced this query:
		// coverage whose backing data the governor reclaimed is a miss.
		// viewFromStore can still lose the race in the window after the
		// check; that, too, degrades to a rescan, never to a query error.
		if _, ok := t.CoveredBy(q); ok && t.StoreBacked(loadCols) {
			if v, err := l.viewFromStore(t, loadCols, conj, tab); err == nil {
				if l.Counters != nil {
					l.Counters.AddCacheHit(1)
				}
				return v, nil
			}
		}
	}
	if l.Counters != nil {
		l.Counters.AddCacheMiss(1)
	}

	view, err := l.PartialScanContext(ctx, t, needCols, conj, tab)
	if err != nil {
		return nil, err
	}

	// Merge qualifying rows into the sparse columns (unless dense already
	// holds the column: dense supersedes). MergeSparse runs under the
	// table lock and keeps the governor's byte accounting current.
	var stored int64
	for _, c := range loadCols {
		col := view.Col(exec.ColKey{Tab: tab, Col: c})
		stored += t.MergeSparse(c, view.Rows, col.Value)
	}
	if l.Counters != nil && stored > 0 {
		l.Counters.AddInternalBytesWritten(stored)
	}
	if representable {
		t.AddRegion(q)
	}
	return view, nil
}

// viewFromStore serves a covered query from the adaptive store: it walks
// the rows present in the (sparse or dense) columns, re-evaluates the
// conjunction, and materializes the result view.
func (l *Loader) viewFromStore(t *catalog.Table, loadCols []int, conj expr.Conjunction, tab int) (*exec.View, error) {
	sch := t.Schema()

	// Snapshot the column pointers once: a concurrent governor eviction may
	// drop them from the table mid-iteration, but the snapshot keeps this
	// query's view of the data alive and consistent.
	dense := make(map[int]*storage.DenseColumn, len(loadCols))
	sparse := make(map[int]*storage.SparseColumn, len(loadCols))
	// Candidate rows: the sparse column with the fewest entries bounds the
	// iteration; if every column is dense, fall back to a dense select.
	var driver *storage.SparseColumn
	for _, c := range loadCols {
		if d := t.Dense(c); d != nil {
			dense[c] = d
			continue
		}
		sp := t.Sparse(c, false)
		if sp == nil {
			return nil, fmt.Errorf("loader: column %d has no stored data despite coverage", c)
		}
		sparse[c] = sp
		if driver == nil || sp.Len() < driver.Len() {
			driver = sp
		}
	}
	if driver == nil {
		src, err := DenseSourceFor(t, loadCols, l.Counters)
		if err != nil {
			return nil, err
		}
		return exec.SelectDense(src, conj, loadCols, tab)
	}

	get := func(c int, row int64) (storage.Value, bool) {
		if d := dense[c]; d != nil {
			return d.Value(int(row)), true
		}
		if sp := sparse[c]; sp != nil {
			return sp.Get(row)
		}
		// A column outside loadCols (re-evaluated predicate): read through
		// the table, tolerating concurrent eviction.
		if d := t.Dense(c); d != nil {
			return d.Value(int(row)), true
		}
		if sp := t.Sparse(c, false); sp != nil {
			return sp.Get(row)
		}
		return storage.Value{}, false
	}

	batch := &rowBatch{}
	n := driver.Len()
	if l.Counters != nil {
		l.Counters.AddInternalBytesRead(int64(n) * 16)
	}
outer:
	for i := 0; i < n; i++ {
		row, _ := driver.At(i)
		vals := make([]storage.Value, len(loadCols))
		for j, c := range loadCols {
			v, ok := get(c, row)
			if !ok {
				continue outer // row loaded by a region lacking this column
			}
			vals[j] = v
		}
		ok := conj.EvalRow(func(col int) storage.Value {
			for j, c := range loadCols {
				if c == col {
					return vals[j]
				}
			}
			v, _ := get(col, row)
			return v
		})
		if ok {
			batch.add(row, vals)
		}
	}
	batch.sort()
	return viewFromBatch(batch, loadCols, sch, tab), nil
}
