package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"time"

	"nodb"
	"nodb/internal/cluster"
	"nodb/internal/csvgen"
	"nodb/internal/metrics"
	"nodb/internal/server"
)

// clusterScalingTarget is the acceptance bar for scatter-gather: at the
// default experiment scale, the 3-shard topology must answer the cold
// full-scan aggregate workload at least this much faster than one shard
// holding the whole table.
const clusterScalingTarget = 2.0

// clusterScalingEnforceRows is the table size above which the target
// turns from a reported number into a hard error; shape tests run far
// below it.
const clusterScalingEnforceRows = 200_000

// ClusterScaling measures scatter-gather speedup over an in-process
// cluster: for each topology (1, 2, 3 shards) the table is split into
// disjoint contiguous row ranges with csvgen's shard mode, each shard is
// served by its own single-worker nodbd engine behind httptest, and a
// coordinator fans a cold full-scan aggregate workload out with
// partial-aggregate pushdown.
//
// The workload touches each attribute for the first time (one aggregate
// per column), so every query pays the in-situ tokenize-and-parse cost
// over the shard's slice of the raw file — exactly the work sharding
// divides. Aggregates push down, so the coordinator merges one partial
// row per shard and adds no data-volume bottleneck.
//
// All shards share this process, so — as everywhere else in this suite —
// the cluster's response time is recovered through the cost model: each
// shard's measured work counters are modeled independently and the
// topology's response time is the slowest shard's, since on real cluster
// hardware the shards execute concurrently. Wall-clock per topology is
// reported alongside for reference (on a many-core machine it shows the
// same shape; on a single core it cannot).
func ClusterScaling(c Config) (*Report, error) {
	rows := c.scale(400_000)
	const cols = 4
	model := c.model()

	dir, err := c.dataDir()
	if err != nil {
		return nil, err
	}

	workload := make([]string, cols)
	for i := range workload {
		workload[i] = fmt.Sprintf("select sum(a%d), count(*) from R", i+1)
	}

	// runTopology returns the modeled cluster response time (slowest
	// shard), the summed work delta, and the measured wall-clock.
	runTopology := func(n int) (float64, metrics.Snapshot, time.Duration, error) {
		fail := func(err error) (float64, metrics.Snapshot, time.Duration, error) {
			return 0, metrics.Snapshot{}, 0, err
		}
		var shardURLs []string
		var dbs []*nodb.DB
		var closers []func()
		defer func() {
			for _, cl := range closers {
				cl()
			}
		}()
		for i := 1; i <= n; i++ {
			path := filepath.Join(dir, fmt.Sprintf("cluster_%dx%d_s41_shard%d_of%d.csv", rows, cols, i, n))
			if err := csvgen.EnsureFile(path, csvgen.Spec{
				Rows: rows, Cols: cols, Seed: 41,
				ShardIndex: i, ShardCount: n,
			}); err != nil {
				return fail(err)
			}
			db := nodb.Open(nodb.Options{
				Policy:   nodb.PartialLoadsV2,
				Workers:  1,
				SplitDir: filepath.Join(dir, fmt.Sprintf("cluster_splits_%d_of_%d", i, n)),
			})
			if err := db.Link("R", path); err != nil {
				db.Close()
				return fail(err)
			}
			srv := server.New(server.Config{DB: db})
			srv.MarkReady()
			ts := httptest.NewServer(srv)
			closers = append(closers, ts.Close, func() { db.Close() })
			dbs = append(dbs, db)
			shardURLs = append(shardURLs, ts.URL)
		}
		coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{Shards: shardURLs})
		if err != nil {
			return fail(err)
		}
		defer coord.Close()
		cts := httptest.NewServer(coord)
		defer cts.Close()

		before := make([]metrics.Snapshot, n)
		for i, db := range dbs {
			before[i] = db.Work()
		}
		start := time.Now()
		for _, q := range workload {
			body, _ := json.Marshal(map[string]string{"query": q})
			resp, err := http.Post(cts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				return fail(err)
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fail(fmt.Errorf("cluster-scaling %d shards %q: http %d: %s", n, q, resp.StatusCode, b))
			}
		}
		wall := time.Since(start)

		var slowest float64
		var total metrics.Snapshot
		for i, db := range dbs {
			delta := db.Work().Sub(before[i])
			if sec := model.Seconds(delta); sec > slowest {
				slowest = sec
			}
			total = total.Add(delta)
		}
		return slowest, total, wall, nil
	}

	s := Series{Name: "scatter-gather"}
	modeled := make(map[int]float64)
	walls := make(map[int]time.Duration)
	for _, n := range []int{1, 2, 3} {
		sec, work, wall, err := runTopology(n)
		if err != nil {
			return nil, err
		}
		modeled[n] = sec
		walls[n] = wall
		s.Points = append(s.Points, Point{
			X: float64(n), Label: fmt.Sprintf("%d shard(s)", n),
			ModelSec: sec, Wall: wall, Work: work,
		})
	}

	speedup2 := modeled[1] / modeled[2]
	speedup3 := modeled[1] / modeled[3]
	notes := []string{
		fmt.Sprintf("%s x %d attrs, cold first-touch aggregate per attribute; shard engines Workers=1", sizeLabel(rows), cols),
		"response time = slowest shard's modeled time (shards run concurrently on cluster hardware)",
		fmt.Sprintf("2 shards: %.2fx, 3 shards: %.2fx (target at 3 shards: >= %.1fx)", speedup2, speedup3, clusterScalingTarget),
		fmt.Sprintf("wall-clock on this host: 1 shard %s, 2 shards %s, 3 shards %s",
			walls[1].Round(time.Millisecond), walls[2].Round(time.Millisecond), walls[3].Round(time.Millisecond)),
	}
	if rows >= clusterScalingEnforceRows && speedup3 < clusterScalingTarget {
		return nil, fmt.Errorf("cluster-scaling: 3-shard speedup %.2fx is below the %.1fx target (1 shard %s, 3 shards %s)",
			speedup3, clusterScalingTarget, fmtSec(modeled[1]), fmtSec(modeled[3]))
	}

	return &Report{
		ID:     "cluster-scaling",
		Title:  "Scatter-gather cluster: cold full-scan workload vs shard count",
		XAxis:  "shards",
		Series: []Series{s},
		Notes:  notes,
	}, nil
}
