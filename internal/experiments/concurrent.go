package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"nodb/internal/core"
	"nodb/internal/metrics"
	"nodb/internal/plan"
)

// Concurrency measures the query-server scenario the paper's single-user
// experiments stop short of: one shared engine, N parallel clients firing
// Q2-style queries through QueryContext. A fixed workload (32 queries) is
// split across the clients, so ideal scaling halves the wall-clock each
// time the client count doubles; contention on the table's load locks and
// the shared adaptive store is what keeps it from doing so. Reported
// seconds are measured wall-clock for the whole workload (the cost model
// has no contention term).
func Concurrency(cfg Config) (*Report, error) {
	rows := cfg.scale(100000)
	path, err := cfg.ensureTable("conc", rows, 4, cfg.seed())
	if err != nil {
		return nil, err
	}

	const totalQueries = 32
	clientCounts := []int{1, 2, 4, 8}

	rep := &Report{
		ID:    "conc",
		Title: fmt.Sprintf("Concurrent clients: %d-query workload over one shared engine (%d rows)", totalQueries, rows),
		XAxis: "clients",
		Notes: []string{
			"wall-clock seconds for the whole workload (no cost model: contention is what is being measured)",
			"queries are 10%-selective Q2 aggregations; the first per column pays the adaptive load",
		},
	}

	for _, pol := range []plan.Policy{plan.PolicyColumnLoads, plan.PolicyPartialV2, plan.PolicyAuto} {
		series := Series{Name: pol.String()}
		for _, clients := range clientCounts {
			e := core.NewEngine(core.Options{Policy: pol, DisableRevalidation: true})
			if err := e.Link("R", path); err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(cfg.seed()))
			queries := make([]string, totalQueries)
			for i := range queries {
				c1, c2 := i%3, i%3+1
				lo1, hi1, lo2, hi2 := q2Range(rng, rows, 0.1)
				queries[i], _, _, _ = q2Query(c1, c2, lo1, hi1, lo2, hi2)
			}

			before := e.Counters().Snapshot()
			timer := metrics.StartTimer()
			var wg sync.WaitGroup
			errCh := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := c; i < totalQueries; i += clients {
						if _, err := e.QueryContext(context.Background(), queries[i]); err != nil {
							errCh <- err
							return
						}
					}
				}(c)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				if err != nil {
					return nil, err
				}
			}
			wall := timer.Elapsed()
			series.Points = append(series.Points, Point{
				X:        float64(clients),
				Label:    fmt.Sprintf("%d", clients),
				ModelSec: wall.Seconds(),
				Wall:     wall,
				Work:     e.Counters().Snapshot().Sub(before),
			})
		}
		rep.Series = append(rep.Series, series)
	}
	return rep, nil
}
