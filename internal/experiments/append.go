package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"nodb/internal/core"
	"nodb/internal/metrics"
	"nodb/internal/plan"
)

// Append measures incremental tail re-adaptation against a full relearn.
// Raw files in the paper's setting are commonly append-only logs: the
// prefix the engine has already adapted to never changes, only new rows
// arrive at the end. Invalidating everything on growth would re-pay the
// whole learning curve on every poll; the append-aware path instead
// extends the positional map, cached columns and synopsis over just the
// new tail.
//
// Setup: a file whose first 90% of rows the engine has fully adapted to
// (warm-up queries), then the remaining 10% is appended.
//
//   - "incremental": Refresh folds the tail in, then the first post-append
//     query runs over the extended structures.
//   - "full relearn": a fresh engine cold-opens the grown file and pays
//     the full first-query load.
//
// Both answer the same aggregate over the grown file; the experiment
// fails (non-nil error) unless the answers match byte for byte and the
// incremental path is at least 3x cheaper than the full relearn — the CI
// floor for this PR's tentpole.
func Append(c Config) (*Report, error) {
	rows := c.scale(200_000)
	const cols = 8
	const warmQueries = 4
	prefixRows := rows * 9 / 10
	model := c.model()

	full, err := c.ensureTable("append", rows, cols, 17)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(full)
	if err != nil {
		return nil, err
	}
	cut := lineOffset(data, prefixRows)
	if cut <= 0 || cut >= len(data) {
		return nil, fmt.Errorf("append: bad prefix cut %d of %d bytes", cut, len(data))
	}

	// The growing file lives in a scratch dir so reruns start from the
	// 90% prefix every time.
	workDir, err := os.MkdirTemp("", "nodb-append-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(workDir)
	work := filepath.Join(workDir, "grow.csv")
	if err := os.WriteFile(work, data[:cut], 0o644); err != nil {
		return nil, err
	}

	query := "select sum(a1), sum(a2), count(*) from R"

	newEngine := func() *core.Engine {
		return core.NewEngine(core.Options{
			Policy:              plan.PolicyColumnLoads,
			Workers:             c.Workers,
			ChunkSize:           c.ChunkSize,
			DisableRevalidation: true,
		})
	}

	// Phase 1: adapt to the 90% prefix.
	eng := newEngine()
	defer eng.Close()
	if err := eng.Attach("R", core.TableSpec{Path: work}); err != nil {
		return nil, err
	}
	warm := Series{Name: "prefix warm-up"}
	for q := 1; q <= warmQueries; q++ {
		timer := metrics.StartTimer()
		res, err := eng.Query(query)
		if err != nil {
			return nil, fmt.Errorf("append warm-up q%d: %w", q, err)
		}
		warm.Points = append(warm.Points, Point{
			X: float64(q), Label: fmt.Sprintf("Q%d", q),
			ModelSec: model.Seconds(res.Stats.Work),
			Wall:     timer.Elapsed(),
			Work:     res.Stats.Work,
		})
	}

	// The append: the remaining 10% of rows land at the tail.
	f, err := os.OpenFile(work, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(data[cut:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	// Phase 2: incremental — Refresh plus the first post-append query,
	// measured together as one counter delta (the re-adaptation cost).
	before := eng.Counters().Snapshot()
	timer := metrics.StartTimer()
	ref, err := eng.Refresh("R")
	if err != nil {
		return nil, fmt.Errorf("append refresh: %w", err)
	}
	incRes, err := eng.Query(query)
	if err != nil {
		return nil, fmt.Errorf("append post-refresh query: %w", err)
	}
	incWall := timer.Elapsed()
	incWork := eng.Counters().Snapshot().Sub(before)
	incSec := model.Seconds(incWork)
	if !ref.Grown {
		return nil, fmt.Errorf("append: refresh did not take the growth path: %+v", ref)
	}
	if want := int64(rows - prefixRows); ref.RowsAdded != want {
		return nil, fmt.Errorf("append: refresh ingested %d rows, want %d", ref.RowsAdded, want)
	}

	// Phase 3: full relearn — a fresh engine cold-opens the grown file.
	cold := newEngine()
	defer cold.Close()
	if err := cold.Attach("R", core.TableSpec{Path: work}); err != nil {
		return nil, err
	}
	timer = metrics.StartTimer()
	coldRes, err := cold.Query(query)
	if err != nil {
		return nil, fmt.Errorf("append cold query: %w", err)
	}
	coldWall := timer.Elapsed()
	coldSec := model.Seconds(coldRes.Stats.Work)

	if got, want := fmt.Sprint(incRes.Rows), fmt.Sprint(coldRes.Rows); got != want {
		return nil, fmt.Errorf("append: incremental answer %s differs from cold answer %s", got, want)
	}

	ratio := 0.0
	if incSec > 0 {
		ratio = coldSec / incSec
	}
	if ratio < 3 {
		return nil, fmt.Errorf("append: incremental re-adaptation only %.2fx cheaper than full relearn (modeled %.1fms vs %.1fms), floor is 3x",
			ratio, incSec*1000, coldSec*1000)
	}

	inc := Series{Name: "incremental", Points: []Point{{
		X: 1, Label: "re-adapt", ModelSec: incSec, Wall: incWall, Work: incWork,
	}}}
	relearn := Series{Name: "full relearn", Points: []Point{{
		X: 1, Label: "re-adapt", ModelSec: coldSec, Wall: coldWall, Work: coldRes.Stats.Work,
	}}}

	return &Report{
		ID:     "append",
		Title:  fmt.Sprintf("Append-growth re-adaptation (%s prefix + %s appended, %d attrs)", sizeLabel(prefixRows), sizeLabel(rows-prefixRows), cols),
		XAxis:  "phase",
		Series: []Series{inc, relearn},
		Notes: []string{
			fmt.Sprintf("incremental refresh+query %.1fms vs full relearn %.1fms: %.1fx cheaper (floor 3x, enforced)",
				incSec*1000, coldSec*1000, ratio),
			fmt.Sprintf("refresh ingested %d rows / %d tail bytes; answers verified identical to a cold open of the grown file",
				ref.RowsAdded, ref.TailBytes),
			fmt.Sprintf("prefix warm-up steady state %.1fms over %d queries", warm.Points[len(warm.Points)-1].ModelSec*1000, warmQueries),
		},
	}, nil
}

// lineOffset returns the byte offset just past the n-th newline, i.e. the
// start of line n (0-based) — the cut point that keeps exactly n complete
// rows of a headerless CSV.
func lineOffset(b []byte, n int) int {
	off := 0
	for i := 0; i < n; i++ {
		j := bytes.IndexByte(b[off:], '\n')
		if j < 0 {
			return -1
		}
		off += j + 1
	}
	return off
}
