package experiments

import (
	"strings"
	"testing"
)

// smallCfg keeps experiment tests fast: ~1% of default scale.
func smallCfg(t *testing.T) Config {
	t.Helper()
	return Config{DataDir: t.TempDir(), Scale: 0.01}
}

func TestFig1aShape(t *testing.T) {
	r, err := Fig1a(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	db, ok := r.SeriesByName("DB load")
	if !ok {
		t.Fatal("missing DB load series")
	}
	awk, _ := r.SeriesByName("Awk")
	// Awk loading is zero; DB loading grows with size.
	if awk.Total() != 0 {
		t.Errorf("Awk loading cost = %v, want 0", awk.Total())
	}
	for i := 1; i < len(db.Points); i++ {
		if db.Points[i].ModelSec <= db.Points[i-1].ModelSec {
			t.Errorf("DB load not increasing: %v then %v", db.Points[i-1].ModelSec, db.Points[i].ModelSec)
		}
	}
	if db.Points[len(db.Points)-1].Work.RawBytesRead == 0 {
		t.Error("loading should read the raw file")
	}
}

func TestFig1bShape(t *testing.T) {
	r, err := Fig1b(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	awk, _ := r.SeriesByName("Awk")
	cold, _ := r.SeriesByName("Cold DB")
	hot, _ := r.SeriesByName("Hot DB")
	idx, _ := r.SeriesByName("Index DB")
	for i := range awk.Points {
		a, c, h, x := awk.Points[i].ModelSec, cold.Points[i].ModelSec, hot.Points[i].ModelSec, idx.Points[i].ModelSec
		if !(a > c) {
			t.Errorf("point %d: Awk (%v) should exceed cold DB (%v)", i, a, c)
		}
		if !(c > h) {
			t.Errorf("point %d: cold DB (%v) should exceed hot DB (%v)", i, c, h)
		}
		if !(h > x) {
			t.Errorf("point %d: hot DB (%v) should exceed index DB (%v)", i, h, x)
		}
	}
	// The Awk/hot gap should be around an order of magnitude at the
	// largest size (paper: "one order of magnitude faster").
	last := len(awk.Points) - 1
	if ratio := awk.Points[last].ModelSec / hot.Points[last].ModelSec; ratio < 5 {
		t.Errorf("Awk/hot ratio = %.1f, want >= 5", ratio)
	}
}

func TestJoinsShape(t *testing.T) {
	r, err := Joins(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	hashS, _ := r.SeriesByName("Awk hash join")
	mergeS, _ := r.SeriesByName("sort+merge join")
	coldS, _ := r.SeriesByName("Cold DB")
	hotS, _ := r.SeriesByName("Hot DB")
	h, m, c, ht := hashS.Total(), mergeS.Total(), coldS.Total(), hotS.Total()
	// Paper ordering: hash-awk > sort+merge-awk > cold DB >> hot DB.
	if !(h > m) {
		t.Errorf("hash (%v) should exceed sort+merge (%v)", h, m)
	}
	if !(m > c) {
		t.Errorf("sort+merge (%v) should exceed cold DB (%v)", m, c)
	}
	if !(c > ht) {
		t.Errorf("cold (%v) should exceed hot (%v)", c, ht)
	}
}

func TestPerlRatio(t *testing.T) {
	r, err := Perl(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	awk, _ := r.SeriesByName("Awk")
	perl, _ := r.SeriesByName("Perl")
	ratio := perl.Total() / awk.Total()
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("Perl/Awk ratio = %.2f, want ~2 (paper)", ratio)
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	monet, _ := r.SeriesByName("MonetDB")
	mysql, _ := r.SeriesByName("MySQL CSV")
	col, _ := r.SeriesByName("Column Loads")
	v1, _ := r.SeriesByName("Partial Loads V1")

	if len(monet.Points) != 20 {
		t.Fatalf("points = %d, want 20", len(monet.Points))
	}
	// MonetDB: Q1 dominates, Q2+ cheap.
	if monet.Points[0].ModelSec < 10*monet.Points[1].ModelSec {
		t.Errorf("MonetDB Q1 (%v) should dwarf Q2 (%v)", monet.Points[0].ModelSec, monet.Points[1].ModelSec)
	}
	// Column Loads: Q1 cheaper than MonetDB's Q1 (roughly half).
	if col.Points[0].ModelSec >= monet.Points[0].ModelSec {
		t.Errorf("Column Loads Q1 (%v) should undercut MonetDB Q1 (%v)", col.Points[0].ModelSec, monet.Points[0].ModelSec)
	}
	// Column Loads: Q11 bump (new columns), then cheap again.
	if col.Points[10].ModelSec < 5*col.Points[9].ModelSec {
		t.Errorf("Column Loads Q11 (%v) should spike vs Q10 (%v)", col.Points[10].ModelSec, col.Points[9].ModelSec)
	}
	if col.Points[11].ModelSec > col.Points[10].ModelSec/5 {
		t.Errorf("Column Loads Q12 (%v) should drop after the Q11 load (%v)", col.Points[11].ModelSec, col.Points[10].ModelSec)
	}
	// MySQL CSV: roughly constant (max/min < 3).
	mn, mx := mysql.Points[0].ModelSec, mysql.Points[0].ModelSec
	for _, p := range mysql.Points {
		if p.ModelSec < mn {
			mn = p.ModelSec
		}
		if p.ModelSec > mx {
			mx = p.ModelSec
		}
	}
	if mx/mn > 3 {
		t.Errorf("MySQL CSV should be ~constant: min=%v max=%v", mn, mx)
	}
	// Partial V1 re-reads every query: every point pays raw bytes.
	for i, p := range v1.Points {
		if p.Work.RawBytesRead == 0 {
			t.Errorf("Partial V1 Q%d read no raw bytes", i+1)
		}
	}
	// MonetDB steady state beats MySQL CSV (the point of loading).
	if monet.Points[5].ModelSec >= mysql.Points[5].ModelSec {
		t.Errorf("hot MonetDB Q6 (%v) should beat MySQL CSV (%v)", monet.Points[5].ModelSec, mysql.Points[5].ModelSec)
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	monet, _ := r.SeriesByName("MonetDB")
	col, _ := r.SeriesByName("Column Loads")
	v2, _ := r.SeriesByName("Partial Loads V2")
	sf, _ := r.SeriesByName("Split Files")
	if len(sf.Points) != 12 {
		t.Fatalf("points = %d, want 12", len(sf.Points))
	}
	// First query: Split Files well below MonetDB (paper: ~4x).
	if sf.Points[0].ModelSec >= monet.Points[0].ModelSec {
		t.Errorf("Split Files Q1 (%v) should undercut MonetDB Q1 (%v)", sf.Points[0].ModelSec, monet.Points[0].ModelSec)
	}
	// Reruns (even queries) are cheap for every adaptive strategy.
	for _, s := range []Series{col, v2, sf} {
		for i := 1; i < len(s.Points); i += 2 {
			first, rerun := s.Points[i-1].ModelSec, s.Points[i].ModelSec
			if rerun > first/2 {
				t.Errorf("%s Q%d rerun (%v) should be far below first run (%v)", s.Name, i+1, rerun, first)
			}
		}
	}
	// Later misses: Split Files cheaper than Column Loads (paper: ~5x)
	// and than Partial V2 (paper: ~2x). Q5 is the third distinct query.
	q5 := 4
	if sf.Points[q5].ModelSec >= col.Points[q5].ModelSec {
		t.Errorf("Split Files Q5 (%v) should beat Column Loads Q5 (%v)", sf.Points[q5].ModelSec, col.Points[q5].ModelSec)
	}
	if sf.Points[q5].ModelSec >= v2.Points[q5].ModelSec {
		t.Errorf("Split Files Q5 (%v) should beat Partial V2 Q5 (%v)", sf.Points[q5].ModelSec, v2.Points[q5].ModelSec)
	}
}

func TestAblationPositionalMap(t *testing.T) {
	r, err := AblationPositionalMap(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	on, _ := r.SeriesByName("posmap on")
	off, _ := r.SeriesByName("posmap off")
	if on.Points[0].Work.AttrsTokenized >= off.Points[0].Work.AttrsTokenized {
		t.Errorf("posmap should reduce tokenized attrs: on=%d off=%d",
			on.Points[0].Work.AttrsTokenized, off.Points[0].Work.AttrsTokenized)
	}
}

func TestAblationSplitFiles(t *testing.T) {
	r, err := AblationSplitFiles(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := r.SeriesByName("column loads")
	split, _ := r.SeriesByName("split files")
	// After the first step, split loads must read fewer file bytes.
	var plainBytes, splitBytes int64
	for i := 1; i < len(plain.Points); i++ {
		plainBytes += plain.Points[i].Work.RawBytesRead
		splitBytes += split.Points[i].Work.RawBytesRead + split.Points[i].Work.SplitBytesRead
	}
	if splitBytes >= plainBytes {
		t.Errorf("split files should read less: split=%d plain=%d", splitBytes, plainBytes)
	}
}

func TestAblationWorkers(t *testing.T) {
	r, err := AblationWorkers(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	wall, ok := r.SeriesByName("wall-clock")
	if !ok || len(wall.Points) != 3 {
		t.Fatalf("wall-clock series missing or wrong size: %+v", r.Series)
	}
	// All worker counts tokenize the same number of rows.
	base := wall.Points[0].Work.RowsTokenized
	for _, p := range wall.Points[1:] {
		if p.Work.RowsTokenized != base {
			t.Errorf("%s tokenized %d rows, want %d", p.Label, p.Work.RowsTokenized, base)
		}
	}
}

func TestAblationEarlyAbandon(t *testing.T) {
	r, err := AblationEarlyAbandon(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := r.SeriesByName("early abandon")
	full, _ := r.SeriesByName("no abandon")
	if ab.Points[0].Work.AttrsTokenized >= full.Points[0].Work.AttrsTokenized/2 {
		t.Errorf("abandon should cut tokenization drastically: %d vs %d",
			ab.Points[0].Work.AttrsTokenized, full.Points[0].Work.AttrsTokenized)
	}
}

func TestAblationBudget(t *testing.T) {
	r, err := AblationBudget(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"evict=cost", "evict=lru"} {
		s, ok := r.SeriesByName(name)
		if !ok {
			t.Fatalf("missing series %s", name)
		}
		if len(s.Points) != 5 {
			t.Fatalf("%s: %d points, want 5", name, len(s.Points))
		}
		// The tightest budget must pay at least as much as no budget: a
		// workload bigger than the budget keeps re-loading.
		if s.Points[len(s.Points)-1].ModelSec < s.Points[0].ModelSec {
			t.Errorf("%s: tight budget (%.4fs) cheaper than unlimited (%.4fs)",
				name, s.Points[len(s.Points)-1].ModelSec, s.Points[0].ModelSec)
		}
	}
}

func TestReportFormat(t *testing.T) {
	r, err := Perl(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	out := r.Format()
	if !strings.Contains(out, "perl") && !strings.Contains(out, "Perl") {
		t.Errorf("Format output missing series: %q", out)
	}
	wall := r.FormatWall()
	if !strings.Contains(wall, "wall-clock") {
		t.Errorf("FormatWall missing marker: %q", wall)
	}
}

func TestAllAndLookup(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("experiments = %d, want 19", len(all))
	}
	ids := map[string]bool{}
	for _, r := range all {
		if r.Run == nil || r.ID == "" || r.Description == "" {
			t.Errorf("incomplete runner %+v", r.ID)
		}
		if ids[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
	}
	if _, ok := Lookup("fig3"); !ok {
		t.Error("Lookup(fig3) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) should fail")
	}
}

// TestWarmRestartCurve pins the PR's acceptance criterion: with a
// populated cache dir, the first query after reopen lands within 2x of
// the pre-restart steady state, while a cold restart re-pays the full
// adaptive learning cost.
func TestWarmRestartCurve(t *testing.T) {
	r, err := WarmRestart(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	initial, ok1 := r.SeriesByName("initial")
	warm, ok2 := r.SeriesByName("warm restart")
	cold, ok3 := r.SeriesByName("cold restart")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing series")
	}
	steady := initial.Points[len(initial.Points)-1].ModelSec
	warmFirst := warm.Points[0].ModelSec
	coldFirst := cold.Points[0].ModelSec
	if steady <= 0 {
		t.Fatal("steady state is zero; the workload no longer scans anything")
	}
	if ratio := warmFirst / steady; ratio > 2.0 {
		t.Errorf("warm first query is %.2fx steady state, want <= 2x", ratio)
	}
	if coldFirst <= warmFirst {
		t.Errorf("cold restart (%.4fs) should cost more than warm (%.4fs)", coldFirst, warmFirst)
	}
	// The learning curve itself: query 1 cold must dwarf the steady state.
	if initial.Points[0].ModelSec < 2*steady {
		t.Errorf("no learning curve: q1 %.4fs vs steady %.4fs", initial.Points[0].ModelSec, steady)
	}
}

// TestSynopsisSweepSpeedup pins the PR's acceptance criterion: after one
// learning pass, a 1%-selectivity query on the clustered attribute runs
// at least 3x faster (modeled) than the synopsis-less full re-scan, and
// the curve tightens monotonically as selectivity drops.
func TestSynopsisSweepSpeedup(t *testing.T) {
	r, err := SynopsisSweep(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	syn, ok1 := r.SeriesByName("synopsis skip")
	full, ok2 := r.SeriesByName("full re-scan")
	if !ok1 || !ok2 {
		t.Fatal("missing series")
	}
	if len(syn.Points) != len(full.Points) || len(syn.Points) == 0 {
		t.Fatalf("series shape: %d vs %d points", len(syn.Points), len(full.Points))
	}
	// The 1% point is the headline: >= 3x.
	if syn.Points[0].X != 1 {
		t.Fatalf("first point at %v%%, want 1%%", syn.Points[0].X)
	}
	if syn.Points[0].ModelSec <= 0 {
		t.Fatal("1% synopsis query modeled zero cost; nothing was measured")
	}
	ratio := full.Points[0].ModelSec / syn.Points[0].ModelSec
	if ratio < 3 {
		t.Errorf("1%% selectivity speedup = %.2fx, want >= 3x (full %.4fs, synopsis %.4fs)",
			ratio, full.Points[0].ModelSec, syn.Points[0].ModelSec)
	}
	// Skipping must be real: the 1% query pruned portions and read far
	// fewer raw bytes.
	if syn.Points[0].Work.PortionsSkipped == 0 {
		t.Error("1% query skipped no portions")
	}
	if syn.Points[0].Work.RawBytesRead*2 >= full.Points[0].Work.RawBytesRead {
		t.Errorf("1%% query read %d raw bytes vs %d unpruned; want a large reduction",
			syn.Points[0].Work.RawBytesRead, full.Points[0].Work.RawBytesRead)
	}
	// At 100% selectivity nothing can be skipped: both engines pay a full
	// pass and the synopsis must not be slower than ~the baseline.
	last := len(syn.Points) - 1
	if syn.Points[last].Work.RawBytesRead > full.Points[last].Work.RawBytesRead {
		t.Errorf("100%% query read more bytes with synopsis (%d) than without (%d)",
			syn.Points[last].Work.RawBytesRead, full.Points[last].Work.RawBytesRead)
	}
}

// TestVectorizedShape checks the batch-vs-row experiment's structure at
// test scale. The >= 1.5x full-scan speedup itself is enforced inside
// Vectorized at experiment scale (vectorizedEnforceRows); at a few
// thousand rows per-query fixed costs dominate and wall-clock ratios are
// meaningless, so here we pin shape and the hot-table invariant only.
func TestVectorizedShape(t *testing.T) {
	r, err := Vectorized(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	vec, ok1 := r.SeriesByName("batch pipeline")
	row, ok2 := r.SeriesByName("row-at-a-time")
	if !ok1 || !ok2 {
		t.Fatal("missing series")
	}
	if len(vec.Points) != 3 || len(row.Points) != 3 {
		t.Fatalf("series shape: %d vs %d points, want 3 each", len(vec.Points), len(row.Points))
	}
	for i := range vec.Points {
		// Hot-table invariant (also enforced inside the experiment): no
		// raw-file I/O contaminates the execution measurement.
		if vec.Points[i].Work.RawBytesRead != 0 || row.Points[i].Work.RawBytesRead != 0 {
			t.Errorf("point %d read raw bytes on a hot table", i)
		}
		if vec.Points[i].ModelSec <= 0 || row.Points[i].ModelSec <= 0 {
			t.Errorf("point %d measured zero wall-clock", i)
		}
	}
	if vec.Points[2].X != 100 {
		t.Errorf("last point at %v%%, want 100%%", vec.Points[2].X)
	}
}

func TestFmtSec(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.00002: "0.02ms",
		0.5:     "500.0ms",
		2.5:     "2.50s",
		1234:    "1234s",
	}
	for in, want := range cases {
		if got := fmtSec(in); got != want {
			t.Errorf("fmtSec(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFig1aMemoryKnee(t *testing.T) {
	r, err := Fig1a(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	db, _ := r.SeriesByName("DB load")
	n := len(db.Points)
	if n < 3 {
		t.Fatal("need at least 3 sizes")
	}
	// Per-row loading cost jumps at the last size (memory exhausted).
	perRowLast := db.Points[n-1].ModelSec / db.Points[n-1].X
	perRowPrev := db.Points[n-2].ModelSec / db.Points[n-2].X
	if perRowLast < perRowPrev*1.3 {
		t.Errorf("expected superlinear knee: per-row %v then %v", perRowPrev, perRowLast)
	}
}

func TestClusterScalingShape(t *testing.T) {
	r, err := ClusterScaling(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := r.SeriesByName("scatter-gather")
	if !ok {
		t.Fatal("missing scatter-gather series")
	}
	if len(s.Points) != 3 {
		t.Fatalf("want 3 topology points, got %d", len(s.Points))
	}
	for i, p := range s.Points {
		if p.X != float64(i+1) {
			t.Errorf("point %d at x=%v, want %d shards", i, p.X, i+1)
		}
		if p.Wall <= 0 {
			t.Errorf("point %d measured zero wall-clock", i)
		}
	}
}

func TestRedundantTrafficShape(t *testing.T) {
	r, err := RedundantTraffic(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	un, ok := r.SeriesByName("no cache")
	if !ok {
		t.Fatal("missing no-cache series")
	}
	ca, ok := r.SeriesByName("cache+singleflight")
	if !ok {
		t.Fatal("missing cached series")
	}
	if len(un.Points) != 1 || len(ca.Points) != 1 {
		t.Fatalf("want 1 point per series, got %d and %d", len(un.Points), len(ca.Points))
	}
	// Even at toy scale, duplicates served from the cache must cost
	// strictly less modeled work than re-executing all of them.
	if ca.Points[0].ModelSec >= un.Points[0].ModelSec {
		t.Errorf("cached workload modeled %v, uncached %v: cache bought nothing",
			ca.Points[0].ModelSec, un.Points[0].ModelSec)
	}
	// The cached run's work snapshot must show real cache traffic.
	w := ca.Points[0].Work
	if w.ResultCacheHits == 0 && w.QueriesCollapsed == 0 {
		t.Errorf("no cache hits and no collapsed queries recorded: hits=%d collapsed=%d",
			w.ResultCacheHits, w.QueriesCollapsed)
	}
}

func TestTenantIsolationShape(t *testing.T) {
	r, err := TenantIsolation(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"partitioned", "shared pool"} {
		s, ok := r.SeriesByName(name)
		if !ok {
			t.Fatalf("missing %q series", name)
		}
		if len(s.Points) != 2 {
			t.Fatalf("%q: want solo + under-load points, got %d", name, len(s.Points))
		}
		for i, p := range s.Points {
			if p.Wall <= 0 {
				t.Errorf("%q point %d measured zero wall-clock", name, i)
			}
		}
	}
}
