package experiments

import (
	"fmt"
	"os"

	"nodb/internal/core"
	"nodb/internal/metrics"
	"nodb/internal/plan"
)

// AblationBudget reproduces the paper's life-time-management tradeoff
// (§5.1.3): adaptive state under a memory budget. A column-loads workload
// cycles over more attributes than any sub-100% budget can hold at once,
// so the governor must keep evicting; the smaller the budget, the more
// re-loading the workload pays. One series per eviction policy (the
// cost-aware default and the plain-LRU baseline), one point per budget as
// a fraction of the full working set — the x axis of a budget-vs-latency
// curve, the y axis the workload's total modeled seconds.
//
// Why cost-aware can win: the budget covers columns *and* the positional
// map. LRU happily evicts the map (it is just another cold structure),
// and later re-loads pay full tokenization; cost-aware sees that the map
// is expensive to rebuild relative to its bytes and sacrifices
// cheap-to-reload columns instead.
func AblationBudget(c Config) (*Report, error) {
	rows := c.scale(200_000)
	const cols = 8
	path, err := c.ensureTable("budget", rows, cols, 7)
	if err != nil {
		return nil, err
	}
	model := fig34Model(c)

	// Measure the unbudgeted working set once: the denominator for the
	// budget fractions.
	fullBytes, _, err := budgetRun(c, path, 0, "cost", model)
	if err != nil {
		return nil, err
	}

	fractions := []struct {
		frac  float64
		label string
	}{
		{0, "unlimited"},
		{1.0, "100%"},
		{0.5, "50%"},
		{0.25, "25%"},
		{0.125, "12.5%"},
	}

	var series []Series
	for _, evict := range []string{"cost", "lru"} {
		s := Series{Name: "evict=" + evict}
		for fi, f := range fractions {
			budget := int64(0)
			if f.frac > 0 {
				budget = int64(float64(fullBytes) * f.frac)
			}
			_, sec, err := budgetRun(c, path, budget, evict, model)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{
				X: float64(fi), Label: f.label, ModelSec: sec,
			})
		}
		series = append(series, s)
	}
	return &Report{
		ID:     "abl-budget",
		Title:  fmt.Sprintf("Memory budget vs workload latency (%s x %d attrs, 3 passes)", sizeLabel(rows), cols),
		XAxis:  "budget",
		Series: series,
		Notes: []string{
			fmt.Sprintf("working set (unlimited budget) = %d bytes of adaptive state", fullBytes),
			"y = total modeled seconds for the whole workload; smaller budgets re-load more",
			"cost-aware eviction protects the positional map; LRU treats it like any cold structure",
		},
	}, nil
}

// budgetRun executes three passes over every attribute under one budget
// and eviction policy, returning the peak governed bytes and the total
// modeled seconds.
func budgetRun(c Config, path string, budget int64, evict string, model metrics.CostModel) (peakBytes int64, totalSec float64, err error) {
	splitDir, err := os.MkdirTemp("", "nodb-splits-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(splitDir)
	eng := core.NewEngine(core.Options{
		Policy:              plan.PolicyColumnLoads,
		SplitDir:            splitDir,
		MemoryBudget:        budget,
		EvictionPolicy:      evict,
		DisableRevalidation: true,
	})
	defer eng.Close()
	if err := eng.Link("R", path); err != nil {
		return 0, 0, err
	}

	const cols = 8
	for pass := 0; pass < 3; pass++ {
		for a := 1; a <= cols; a++ {
			res, err := eng.Query(fmt.Sprintf("select sum(a%d) from R", a))
			if err != nil {
				return 0, 0, fmt.Errorf("budget=%d evict=%s a%d: %w", budget, evict, a, err)
			}
			totalSec += model.Seconds(res.Stats.Work)
			if used := eng.Governor().Used(); used > peakBytes {
				peakBytes = used
			}
			if budget > 0 && eng.Governor().Used() > budget {
				return 0, 0, fmt.Errorf("budget=%d evict=%s: governed bytes %d exceed budget after query",
					budget, evict, eng.Governor().Used())
			}
		}
	}
	return peakBytes, totalSec, nil
}
