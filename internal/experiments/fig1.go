package experiments

import (
	"fmt"
	"math/rand"
	"os"

	"nodb/internal/baseline"
	"nodb/internal/catalog"
	"nodb/internal/core"
	"nodb/internal/exec"
	"nodb/internal/expr"
	"nodb/internal/loader"
	"nodb/internal/metrics"
	"nodb/internal/plan"
	"nodb/internal/sql"
	"nodb/internal/storage"
)

// fig1Sizes are the input sizes (rows × 4 columns), scaled down from the
// paper's 10^6..10^9 to laptop scale.
func fig1Sizes(c Config) []int {
	return []int{c.scale(50_000), c.scale(200_000), c.scale(500_000), c.scale(1_000_000)}
}

func sizeLabel(rows int) string {
	switch {
	case rows >= 1_000_000:
		return fmt.Sprintf("%.3gM tuples", float64(rows)/1e6)
	case rows >= 1_000:
		return fmt.Sprintf("%dk tuples", rows/1000)
	default:
		return fmt.Sprintf("%d tuples", rows)
	}
}

// Fig1a reproduces Figure 1a: the loading/initialization cost a DBMS pays
// before the first query versus the zero cost of pointing a script at the
// file.
func Fig1a(c Config) (*Report, error) {
	sizes := fig1Sizes(c)
	cold := c.model()
	// Give the modeled machine RAM for half the largest table: the
	// biggest load spills to disk, reproducing the paper's knee at 10^9
	// tuples ("the system reaches the memory limits and needs to write
	// the table back to disk").
	cold.MemoryLimitBytes = int64(sizes[len(sizes)-1]) * 8 * 4 / 2
	var db, awk Series
	db.Name = "DB load"
	awk.Name = "Awk"
	for _, rows := range sizes {
		path, err := c.ensureTable("fig1", rows, 4, 1)
		if err != nil {
			return nil, err
		}
		var counters metrics.Counters
		cat := catalog.New(catalog.Options{Counters: &counters})
		tab, err := cat.Link("R", path)
		if err != nil {
			return nil, err
		}
		ld := &loader.Loader{Counters: &counters}
		timer := metrics.StartTimer()
		if err := ld.FullLoad(tab); err != nil {
			return nil, err
		}
		work := counters.Snapshot()
		db.Points = append(db.Points, Point{
			X: float64(rows), Label: sizeLabel(rows),
			ModelSec: cold.Seconds(work), Wall: timer.Elapsed(), Work: work,
		})
		awk.Points = append(awk.Points, Point{X: float64(rows), Label: sizeLabel(rows)})
	}
	return &Report{
		ID:     "fig1a",
		Title:  "Loading/Initialization costs",
		XAxis:  "input size",
		Series: []Series{db, awk},
		Notes: []string{
			"Awk needs no loading step: its cost is zero by construction.",
			"The modeled machine holds half the largest table in RAM, so the largest load spills to disk — the paper's knee at 10^9 tuples, scaled down.",
		},
	}, nil
}

// q1Stmt builds the paper's Q1 for a table of `rows` unique ints: 10%
// selective overall (20% range on a1 × 50% range on a2).
func q1Stmt(rng *rand.Rand, rows int) (string, expr.Conjunction) {
	w1 := int64(float64(rows) * 0.2)
	maxLo := int64(rows) - w1
	if maxLo <= 0 {
		maxLo = 1
	}
	lo1 := rng.Int63n(maxLo)
	hi1 := lo1 + w1
	lo2 := int64(float64(rows) * 0.25)
	hi2 := int64(float64(rows) * 0.75)
	q := fmt.Sprintf(
		"select sum(a1),min(a4),max(a3),avg(a2) from R where a1>%d and a1<%d and a2>%d and a2<%d",
		lo1, hi1, lo2, hi2)
	conj := expr.Conjunction{Preds: []expr.Pred{
		{Col: 0, Op: expr.Gt, Val: storage.IntValue(lo1)},
		{Col: 0, Op: expr.Lt, Val: storage.IntValue(hi1)},
		{Col: 1, Op: expr.Gt, Val: storage.IntValue(lo2)},
		{Col: 1, Op: expr.Lt, Val: storage.IntValue(hi2)},
	}}
	return q, conj
}

// q1Aggs are Q1's aggregates bound to baseline views.
var q1Aggs = []exec.AggSpec{
	{Kind: sql.AggSum, Col: exec.ColKey{Tab: 0, Col: 0}},
	{Kind: sql.AggMin, Col: exec.ColKey{Tab: 0, Col: 3}},
	{Kind: sql.AggMax, Col: exec.ColKey{Tab: 0, Col: 2}},
	{Kind: sql.AggAvg, Col: exec.ColKey{Tab: 0, Col: 1}},
}

// Fig1b reproduces Figure 1b: pure query processing cost (loading
// excluded) for Awk, a cold DB, a hot DB, and an adaptively indexed DB.
func Fig1b(c Config) (*Report, error) {
	cold := c.model()
	hot := cold
	hot.Hot = true
	hot.HotRaw = false

	series := map[string]*Series{
		"Awk":     {Name: "Awk"},
		"Cold DB": {Name: "Cold DB"},
		"Hot DB":  {Name: "Hot DB"},
		"IndexDB": {Name: "Index DB"},
	}
	rng := rand.New(rand.NewSource(c.seed()))

	for _, rows := range fig1Sizes(c) {
		path, err := c.ensureTable("fig1", rows, 4, 1)
		if err != nil {
			return nil, err
		}
		x := float64(rows)
		label := sizeLabel(rows)

		// Awk: re-parse the file, aggregate on the fly.
		{
			var counters metrics.Counters
			_, conj := q1Stmt(rng, rows)
			bt := baseline.Table{Path: path, NumCols: 4}
			timer := metrics.StartTimer()
			v, err := baseline.AwkScan(bt, []int{0, 1, 2, 3}, conj, &counters, 0)
			if err != nil {
				return nil, err
			}
			if _, err := exec.Aggregate(v, q1Aggs); err != nil {
				return nil, err
			}
			work := counters.Snapshot()
			series["Awk"].Points = append(series["Awk"].Points, Point{
				X: x, Label: label, ModelSec: cold.Seconds(work), Wall: timer.Elapsed(), Work: work,
			})
		}

		// DB: pre-load (not measured), then one Q1; the same work is
		// priced cold and hot.
		{
			eng, cleanup, err := newEngine(c, plan.PolicyColumnLoads, false)
			if err != nil {
				return nil, err
			}
			defer cleanup()
			if err := eng.Link("R", path); err != nil {
				return nil, err
			}
			warm, _ := q1Stmt(rng, rows)
			if _, err := eng.Query(warm); err != nil {
				return nil, err
			}
			q, _ := q1Stmt(rng, rows)
			res, err := eng.Query(q)
			if err != nil {
				return nil, err
			}
			series["Cold DB"].Points = append(series["Cold DB"].Points, Point{
				X: x, Label: label, ModelSec: cold.Seconds(res.Stats.Work), Wall: res.Stats.Wall, Work: res.Stats.Work,
			})
			series["Hot DB"].Points = append(series["Hot DB"].Points, Point{
				X: x, Label: label, ModelSec: hot.Seconds(res.Stats.Work), Wall: res.Stats.Wall, Work: res.Stats.Work,
			})
		}

		// Index DB: cracking warms up over a few queries, then measure.
		{
			eng, cleanup, err := newEngine(c, plan.PolicyColumnLoads, true)
			if err != nil {
				return nil, err
			}
			defer cleanup()
			if err := eng.Link("R", path); err != nil {
				return nil, err
			}
			for i := 0; i < 6; i++ {
				warm, _ := q1Stmt(rng, rows)
				if _, err := eng.Query(warm); err != nil {
					return nil, err
				}
			}
			q, _ := q1Stmt(rng, rows)
			res, err := eng.Query(q)
			if err != nil {
				return nil, err
			}
			series["IndexDB"].Points = append(series["IndexDB"].Points, Point{
				X: x, Label: label, ModelSec: hot.Seconds(res.Stats.Work), Wall: res.Stats.Wall, Work: res.Stats.Work,
			})
		}
	}
	return &Report{
		ID:    "fig1b",
		Title: "Query processing costs (Q1, 10% selectivity; loading excluded)",
		XAxis: "input size",
		Series: []Series{
			*series["Awk"], *series["Cold DB"], *series["Hot DB"], *series["IndexDB"],
		},
		Notes: []string{
			"Expected shape (paper): Awk slowest by ~an order of magnitude at scale; cold DB > hot DB > index DB.",
		},
	}, nil
}

// Perl reproduces the in-text observation that the Perl script ran about
// 2x slower than the Awk script.
func Perl(c Config) (*Report, error) {
	cold := c.model()
	rows := c.scale(500_000)
	path, err := c.ensureTable("fig1", rows, 4, 1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.seed()))
	_, conj := q1Stmt(rng, rows)
	bt := baseline.Table{Path: path, NumCols: 4}

	run := func(name string, scanFn func(baseline.Table, []int, expr.Conjunction, *metrics.Counters, int) (*exec.View, error)) (Series, error) {
		var counters metrics.Counters
		timer := metrics.StartTimer()
		v, err := scanFn(bt, []int{0, 1, 2, 3}, conj, &counters, 0)
		if err != nil {
			return Series{}, err
		}
		if _, err := exec.Aggregate(v, q1Aggs); err != nil {
			return Series{}, err
		}
		work := counters.Snapshot()
		return Series{Name: name, Points: []Point{{
			X: float64(rows), Label: sizeLabel(rows),
			ModelSec: cold.Seconds(work), Wall: timer.Elapsed(), Work: work,
		}}}, nil
	}
	awk, err := run("Awk", baseline.AwkScan)
	if err != nil {
		return nil, err
	}
	perl, err := run("Perl", baseline.PerlScan)
	if err != nil {
		return nil, err
	}
	ratio := perl.Points[0].ModelSec / awk.Points[0].ModelSec
	return &Report{
		ID:     "perl",
		Title:  "Perl vs Awk on Q1",
		XAxis:  "input size",
		Series: []Series{awk, perl},
		Notes:  []string{fmt.Sprintf("Perl/Awk modeled ratio = %.2f (paper: ~2.0)", ratio)},
	}, nil
}

// newEngine builds a core engine with an isolated split dir; cleanup
// removes it.
func newEngine(c Config, pol plan.Policy, cracking bool) (*core.Engine, func(), error) {
	splitDir, err := os.MkdirTemp("", "nodb-splits-*")
	if err != nil {
		return nil, nil, err
	}
	eng := core.NewEngine(core.Options{
		Policy:              pol,
		Cracking:            cracking,
		SplitDir:            splitDir,
		DisableRevalidation: true,
	})
	return eng, func() { os.RemoveAll(splitDir) }, nil
}
