package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"nodb/internal/core"
	"nodb/internal/metrics"
	"nodb/internal/plan"
)

// WarmRestart reproduces the paper's adaptive learning curve across a
// process restart. The whole premise of NoDB is that auxiliary structures
// built as a side effect of queries make later queries approach loaded-
// database speed — but those structures die with the process, so a
// restarted server re-pays the learning curve under live traffic. With a
// cache dir, the structures are snapshotted on close and restored lazily
// on first use, so the curve survives.
//
// Three series over the same query sequence:
//
//   - "initial": a fresh engine with a cache dir — query 1 pays the full
//     raw-file load, the rest run hot (the classic curve).
//   - "warm restart": the engine is closed (snapshotting its state) and
//     reopened on the same cache dir — query 1 deserializes the cached
//     columns instead of re-parsing the raw file.
//   - "cold restart": reopened with no cache dir — query 1 re-pays the
//     full load, exactly like "initial".
//
// The headline number (in the notes): the warm first query lands within
// 2x of the pre-restart steady state, while the cold first query re-pays
// the whole learning cost.
func WarmRestart(c Config) (*Report, error) {
	rows := c.scale(200_000)
	const cols = 8
	const queriesPerPhase = 6
	path, err := c.ensureTable("warm", rows, cols, 11)
	if err != nil {
		return nil, err
	}
	// The default (cold) model: steady-state queries pay internal-store
	// reads at disk speed, restores pay snapshot reads, cold loads pay the
	// raw pass — the three regimes the experiment compares.
	model := c.model()

	cacheDir, err := os.MkdirTemp("", "nodb-warm-cache-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(cacheDir)

	// The query reads two full columns, so its steady state is a real
	// scan, not a sub-millisecond cache lookup.
	query := "select sum(a1), sum(a2) from R"

	runPhase := func(name, cache string) (Series, error) {
		eng := core.NewEngine(core.Options{
			Policy:              plan.PolicyColumnLoads,
			CacheDir:            cache,
			Workers:             c.Workers,
			ChunkSize:           c.ChunkSize,
			DisableRevalidation: true,
		})
		defer eng.Close()
		if err := eng.Link("R", path); err != nil {
			return Series{}, err
		}
		s := Series{Name: name}
		for q := 1; q <= queriesPerPhase; q++ {
			timer := metrics.StartTimer()
			res, err := eng.Query(query)
			if err != nil {
				return Series{}, fmt.Errorf("%s q%d: %w", name, q, err)
			}
			s.Points = append(s.Points, Point{
				X: float64(q), Label: fmt.Sprintf("Q%d", q),
				ModelSec: model.Seconds(res.Stats.Work),
				Wall:     timer.Elapsed(),
				Work:     res.Stats.Work,
			})
		}
		return s, eng.Close() // snapshot write happens here for cached phases
	}

	initial, err := runPhase("initial", cacheDir)
	if err != nil {
		return nil, err
	}
	warm, err := runPhase("warm restart", cacheDir)
	if err != nil {
		return nil, err
	}
	cold, err := runPhase("cold restart", "")
	if err != nil {
		return nil, err
	}

	steady := initial.Points[len(initial.Points)-1].ModelSec
	warmFirst := warm.Points[0].ModelSec
	coldFirst := cold.Points[0].ModelSec
	ratio := 0.0
	if steady > 0 {
		ratio = warmFirst / steady
	}
	snapBytes := int64(0)
	if entries, err := os.ReadDir(cacheDir); err == nil {
		for _, e := range entries {
			if info, err := e.Info(); err == nil {
				snapBytes += info.Size()
			}
		}
	}

	return &Report{
		ID:     "warm-restart",
		Title:  fmt.Sprintf("Warm vs cold restart (%s x %d attrs, %d queries per phase)", sizeLabel(rows), cols, queriesPerPhase),
		XAxis:  "query",
		Series: []Series{initial, warm, cold},
		Notes: []string{
			fmt.Sprintf("pre-restart steady state %.1fms; first query after warm restart %.1fms (%.2fx), after cold restart %.1fms (%.1fx)",
				steady*1000, warmFirst*1000, ratio, coldFirst*1000, coldFirst/steady),
			fmt.Sprintf("snapshot cache: %d bytes in %s (deleted after the run)", snapBytes, filepath.Base(cacheDir)),
			"warm Q1 deserializes the cached columns; cold Q1 re-tokenizes the raw file",
		},
	}, nil
}
