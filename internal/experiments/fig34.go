package experiments

import (
	"fmt"
	"math/rand"

	"nodb/internal/baseline"
	"nodb/internal/exec"
	"nodb/internal/expr"
	"nodb/internal/metrics"
	"nodb/internal/plan"
	"nodb/internal/sql"
	"nodb/internal/storage"
)

// q2Query renders a Q2 query over attribute pair (c1, c2) with the given
// bounds, plus the equivalent bound conjunction for baseline scans.
func q2Query(c1, c2 int, lo1, hi1, lo2, hi2 int64) (string, expr.Conjunction, []int, []exec.AggSpec) {
	q := fmt.Sprintf(
		"select sum(a%d),avg(a%d) from R where a%d>%d and a%d<%d and a%d>%d and a%d<%d",
		c1+1, c2+1, c1+1, lo1, c1+1, hi1, c2+1, lo2, c2+1, hi2)
	conj := expr.Conjunction{Preds: []expr.Pred{
		{Col: c1, Op: expr.Gt, Val: storage.IntValue(lo1)},
		{Col: c1, Op: expr.Lt, Val: storage.IntValue(hi1)},
		{Col: c2, Op: expr.Gt, Val: storage.IntValue(lo2)},
		{Col: c2, Op: expr.Lt, Val: storage.IntValue(hi2)},
	}}
	aggs := []exec.AggSpec{
		{Kind: sql.AggSum, Col: exec.ColKey{Tab: 0, Col: c1}},
		{Kind: sql.AggAvg, Col: exec.ColKey{Tab: 0, Col: c2}},
	}
	return q, conj, []int{c1, c2}, aggs
}

// fig3Workload is the Figure 3 query sequence: 10 random Q2 queries over
// (a1, a2), then 10 over (a3, a4); each 10% selective.
func fig3Workload(c Config, rows int) []struct {
	query string
	conj  expr.Conjunction
	cols  []int
	aggs  []exec.AggSpec
} {
	rng := rand.New(rand.NewSource(c.seed()))
	out := make([]struct {
		query string
		conj  expr.Conjunction
		cols  []int
		aggs  []exec.AggSpec
	}, 0, 20)
	for i := 0; i < 20; i++ {
		c1, c2 := 0, 1
		if i >= 10 {
			c1, c2 = 2, 3
		}
		lo1, hi1, lo2, hi2 := q2Range(rng, rows, 0.1)
		q, conj, cols, aggs := q2Query(c1, c2, lo1, hi1, lo2, hi2)
		out = append(out, struct {
			query string
			conj  expr.Conjunction
			cols  []int
			aggs  []exec.AggSpec
		}{q, conj, cols, aggs})
	}
	return out
}

// fig34Model prices figure 3/4 runs: the working set fits in memory so
// reads from the binary store are hot, but loading still persists columns
// to disk (MonetDB materializes BATs), and raw/split files stay on disk.
func fig34Model(c Config) metrics.CostModel {
	m := c.model()
	m.Hot = true
	m.HotRaw = false
	m.ColdWrites = true
	return m
}

// engineSeries runs the query sequence against a fresh engine under the
// given policy, recording one point per query priced under model.
func engineSeries(c Config, model metrics.CostModel, name string, pol plan.Policy, path string, queries []string) (Series, error) {
	eng, cleanup, err := newEngine(c, pol, false)
	if err != nil {
		return Series{}, err
	}
	defer cleanup()
	if err := eng.Link("R", path); err != nil {
		return Series{}, err
	}
	s := Series{Name: name}
	for qi, q := range queries {
		res, err := eng.Query(q)
		if err != nil {
			return Series{}, fmt.Errorf("%s q%d: %w", name, qi+1, err)
		}
		s.Points = append(s.Points, Point{
			X: float64(qi + 1), Label: fmt.Sprintf("Q%d", qi+1),
			ModelSec: model.Seconds(res.Stats.Work), Wall: res.Stats.Wall, Work: res.Stats.Work,
		})
	}
	return s, nil
}

// Fig3 reproduces Figure 3: a 20-query sequence over a 4-attribute table;
// queries 1–10 touch the first two attributes, 11–20 the last two.
func Fig3(c Config) (*Report, error) {
	rows := c.scale(500_000)
	path, err := c.ensureTable("fig3", rows, 4, 3)
	if err != nil {
		return nil, err
	}
	wl := fig3Workload(c, rows)
	queries := make([]string, len(wl))
	for i, w := range wl {
		queries[i] = w.query
	}

	// Figure 3's table fits in memory (the paper's "for the smaller sizes
	// everything fits quite comfortably in memory" regime).
	model := fig34Model(c)
	monetdb, err := engineSeries(c, model, "MonetDB", plan.PolicyFullLoad, path, queries)
	if err != nil {
		return nil, err
	}
	colLoads, err := engineSeries(c, model, "Column Loads", plan.PolicyColumnLoads, path, queries)
	if err != nil {
		return nil, err
	}
	partialV1, err := engineSeries(c, model, "Partial Loads V1", plan.PolicyPartialV1, path, queries)
	if err != nil {
		return nil, err
	}

	// MySQL CSV engine: stateless full-row external scans.
	mysql := Series{Name: "MySQL CSV"}
	bt := baseline.Table{Path: path, NumCols: 4}
	for qi, w := range wl {
		var counters metrics.Counters
		timer := metrics.StartTimer()
		v, err := baseline.MySQLCSVScan(bt, w.cols, w.conj, &counters, 0)
		if err != nil {
			return nil, err
		}
		if _, err := exec.Aggregate(v, w.aggs); err != nil {
			return nil, err
		}
		work := counters.Snapshot()
		mysql.Points = append(mysql.Points, Point{
			X: float64(qi + 1), Label: fmt.Sprintf("Q%d", qi+1),
			ModelSec: model.Seconds(work), Wall: timer.Elapsed(), Work: work,
		})
	}

	return &Report{
		ID:     "fig3",
		Title:  fmt.Sprintf("Alternative loading operators (%s x 4 attrs; Q1-10 on a1,a2; Q11-20 on a3,a4)", sizeLabel(rows)),
		XAxis:  "query",
		Series: []Series{monetdb, mysql, colLoads, partialV1},
		Notes: []string{
			"Expected shape (paper): MonetDB pays everything at Q1 then is flat-fast; MySQL CSV is constant; Column Loads pays ~half of MonetDB at Q1, is fast until the Q11 column shift; Partial Loads V1 stays low but re-reads the file every query.",
		},
	}, nil
}

// Fig4 reproduces Figure 4: a 12-attribute table; 6 distinct Q2 queries,
// each run twice, walking attribute pairs from the END of the row to the
// front (the paper makes Q1 use the last two attributes to show the worst
// split-file start-up).
func Fig4(c Config) (*Report, error) {
	rows := c.scale(300_000)
	const cols = 12
	path, err := c.ensureTable("fig4", rows, cols, 4)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(c.seed() + 4))
	var queries []string
	for i := 0; i < 6; i++ {
		c1 := cols - 2 - 2*i // 10, 8, 6, 4, 2, 0
		c2 := c1 + 1
		lo1, hi1, lo2, hi2 := q2Range(rng, rows, 0.1)
		q, _, _, _ := q2Query(c1, c2, lo1, hi1, lo2, hi2)
		queries = append(queries, q, q) // each query runs twice
	}

	// Figure 4 is the paper's 10^9-tuple regime: loading all 12 columns
	// exceeds RAM. The model gives the machine room for about 4 columns;
	// full loading spills, adaptive loading does not.
	model := fig34Model(c)
	model.MemoryLimitBytes = int64(rows) * 8 * 4

	monetdb, err := engineSeries(c, model, "MonetDB", plan.PolicyFullLoad, path, queries)
	if err != nil {
		return nil, err
	}
	colLoads, err := engineSeries(c, model, "Column Loads", plan.PolicyColumnLoads, path, queries)
	if err != nil {
		return nil, err
	}
	partialV2, err := engineSeries(c, model, "Partial Loads V2", plan.PolicyPartialV2, path, queries)
	if err != nil {
		return nil, err
	}
	splits, err := engineSeries(c, model, "Split Files", plan.PolicySplitFiles, path, queries)
	if err != nil {
		return nil, err
	}

	notes := []string{
		"Each distinct query runs twice (odd = first run, even = rerun); Q1 uses the LAST two attributes.",
		"Expected shape (paper): MonetDB's Q1 dwarfs everything; Split Files' Q1 is several times cheaper and its later misses are cheaper than Partial V2 and Column Loads because it reads only per-column files.",
	}
	// Quantify the split-file advantage on later misses (paper: ~5x vs
	// Column Loads, ~2x vs Partial V2 at Q3+).
	if len(splits.Points) >= 5 {
		cl := colLoads.Points[4].ModelSec // Q5: a fresh pair, post-split
		sf := splits.Points[4].ModelSec
		pv := partialV2.Points[4].ModelSec
		if sf > 0 {
			notes = append(notes, fmt.Sprintf(
				"Q5 (fresh attribute pair): Column Loads / Split Files = %.1fx, Partial V2 / Split Files = %.1fx",
				cl/sf, pv/sf))
		}
	}
	return &Report{
		ID:     "fig4",
		Title:  fmt.Sprintf("Adaptive loading with file reorganization (%s x 12 attrs)", sizeLabel(rows)),
		XAxis:  "query",
		Series: []Series{monetdb, colLoads, partialV2, splits},
		Notes:  notes,
	}, nil
}

// Joins reproduces the §2.2 in-text join experiment: aggregations over a
// 1:1 join of two tables — an Awk hash join, a Unix-sort+merge-join
// pipeline, a cold DB run and a hot DB run.
func Joins(c Config) (*Report, error) {
	rows := c.scale(300_000)
	lp, err := c.ensureTable("joinL", rows, 2, 7)
	if err != nil {
		return nil, err
	}
	rp, err := c.ensureTable("joinR", rows, 2, 8)
	if err != nil {
		return nil, err
	}
	cold := c.model()
	hot := cold
	hot.Hot = true

	var out []Series
	x := float64(rows)
	label := sizeLabel(rows)

	lt := baseline.Table{Path: lp, NumCols: 2}
	rt := baseline.Table{Path: rp, NumCols: 2}

	// Awk hash join.
	{
		var counters metrics.Counters
		timer := metrics.StartTimer()
		v, err := baseline.HashJoinScript(lt, rt, 0, 0, []int{1}, []int{1}, &counters)
		if err != nil {
			return nil, err
		}
		sumAggs := []exec.AggSpec{
			{Kind: sql.AggSum, Col: exec.ColKey{Tab: 0, Col: 1}},
			{Kind: sql.AggSum, Col: exec.ColKey{Tab: 1, Col: 1}},
		}
		if _, err := exec.Aggregate(v, sumAggs); err != nil {
			return nil, err
		}
		work := counters.Snapshot()
		out = append(out, Series{Name: "Awk hash join", Points: []Point{{
			X: x, Label: label, ModelSec: cold.Seconds(work), Wall: timer.Elapsed(), Work: work,
		}}})
	}

	// Unix sort + Awk merge join.
	{
		var counters metrics.Counters
		tmp, err := c.dataDir()
		if err != nil {
			return nil, err
		}
		timer := metrics.StartTimer()
		v, err := baseline.SortMergeJoinScript(lt, rt, 0, 0, []int{1}, []int{1}, tmp, &counters)
		if err != nil {
			return nil, err
		}
		sumAggs := []exec.AggSpec{
			{Kind: sql.AggSum, Col: exec.ColKey{Tab: 0, Col: 1}},
			{Kind: sql.AggSum, Col: exec.ColKey{Tab: 1, Col: 1}},
		}
		if _, err := exec.Aggregate(v, sumAggs); err != nil {
			return nil, err
		}
		work := counters.Snapshot()
		out = append(out, Series{Name: "sort+merge join", Points: []Point{{
			X: x, Label: label, ModelSec: cold.Seconds(work), Wall: timer.Elapsed(), Work: work,
		}}})
	}

	// DB: data already loaded (loading excluded, as in the paper's DB
	// numbers); cold prices the binary store at disk speed, hot at memory
	// speed.
	{
		eng, cleanup, err := newEngine(c, plan.PolicyColumnLoads, false)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		if err := eng.Link("L", lp); err != nil {
			return nil, err
		}
		if err := eng.Link("Rt", rp); err != nil {
			return nil, err
		}
		q := "select sum(l.a2), sum(r.a2), count(*) from L l join Rt r on l.a1 = r.a1"
		if _, err := eng.Query(q); err != nil { // load pass, not measured
			return nil, err
		}
		res, err := eng.Query(q)
		if err != nil {
			return nil, err
		}
		out = append(out, Series{Name: "Cold DB", Points: []Point{{
			X: x, Label: label, ModelSec: cold.Seconds(res.Stats.Work), Wall: res.Stats.Wall, Work: res.Stats.Work,
		}}})
		out = append(out, Series{Name: "Hot DB", Points: []Point{{
			X: x, Label: label, ModelSec: hot.Seconds(res.Stats.Work), Wall: res.Stats.Wall, Work: res.Stats.Work,
		}}})
	}

	return &Report{
		ID:     "joins",
		Title:  "Join experiment (1:1 join, aggregations)",
		XAxis:  "input size",
		Series: out,
		Notes: []string{
			"Paper (2x10^8 tuples): Awk hash 387s; sort+merge 247s; cold DB 39s; hot DB 5s.",
			"Expected shape: hash-awk > sort+merge-awk > cold DB >> hot DB.",
		},
	}, nil
}
