// Package experiments regenerates every figure and table of the paper's
// evaluation. Each experiment returns a Report: one series per system
// curve, one point per x value (input size or query-sequence position),
// carrying the measured work, the wall-clock time, and the modeled
// response time under the calibrated cost model (see internal/metrics and
// DESIGN.md §2 for why both are reported).
//
// The experiments run at laptop scale (default ~10^5–10^6 tuples,
// adjustable via Config.Scale); the paper's hardware-scale behavior is
// recovered through the cost model, and EXPERIMENTS.md records the
// paper-vs-measured comparison for every artifact.
package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"nodb/internal/csvgen"
	"nodb/internal/metrics"
)

// Config parameterizes an experiment run.
type Config struct {
	// DataDir holds the generated CSV inputs (reused between runs).
	DataDir string
	// Scale multiplies the default row counts (1.0 = defaults; the
	// defaults keep the full suite under a few minutes on one core).
	Scale float64
	// Model is the cost model; zero value means the calibrated default.
	Model metrics.CostModel
	// Seed for workload randomness (query ranges).
	Seed int64
	// Workers overrides tokenizer parallelism in the engines experiments
	// build (0 = each experiment's default).
	Workers int
	// ChunkSize overrides the raw-file read chunk size in those engines
	// (0 = default).
	ChunkSize int
}

func (c Config) model() metrics.CostModel {
	if c.Model == (metrics.CostModel{}) {
		return metrics.DefaultCostModel()
	}
	return c.Model
}

func (c Config) scale(n int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n) * s)
	if v < 10 {
		v = 10
	}
	return v
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 20110109 // CIDR'11 opening day
	}
	return c.Seed
}

func (c Config) dataDir() (string, error) {
	dir := c.DataDir
	if dir == "" {
		dir = filepath.Join(os.TempDir(), "nodb-experiments")
	}
	return dir, os.MkdirAll(dir, 0o755)
}

// ensureTable generates (once) a CSV of rows×cols unique ints and returns
// its path.
func (c Config) ensureTable(name string, rows, cols int, seed int64) (string, error) {
	dir, err := c.dataDir()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%dx%d_s%d.csv", name, rows, cols, seed))
	if err := csvgen.EnsureFile(path, csvgen.Spec{Rows: rows, Cols: cols, Seed: seed}); err != nil {
		return "", err
	}
	return path, nil
}

// Point is one measurement.
type Point struct {
	// X is the point's position (input size, or query number).
	X float64
	// Label annotates the point (e.g. "1M tuples" or "Q7").
	Label string
	// ModelSec is the modeled response time in seconds.
	ModelSec float64
	// Wall is the measured wall-clock time.
	Wall time.Duration
	// Work is the counter delta for the point.
	Work metrics.Snapshot
}

// Series is one system curve.
type Series struct {
	Name   string
	Points []Point
}

// Report is one regenerated figure or table.
type Report struct {
	ID     string
	Title  string
	XAxis  string
	Series []Series
	Notes  []string
}

// Format renders the report as an aligned table: one row per x value, one
// column per series, modeled seconds (the paper's y axis).
func (r *Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)

	// Collect the x values in order of first appearance across series.
	type xkey struct {
		x     float64
		label string
	}
	var xs []xkey
	seen := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, xkey{p.X, p.Label})
			}
		}
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i].x < xs[j].x })

	// Header.
	w := len(r.XAxis)
	for _, x := range xs {
		if len(x.label) > w {
			w = len(x.label)
		}
	}
	fmt.Fprintf(&sb, "%-*s", w+2, r.XAxis)
	colw := make([]int, len(r.Series))
	for i, s := range r.Series {
		colw[i] = len(s.Name)
		if colw[i] < 12 {
			colw[i] = 12
		}
		fmt.Fprintf(&sb, "  %*s", colw[i], s.Name)
	}
	sb.WriteByte('\n')

	lookup := func(s Series, x float64) (Point, bool) {
		for _, p := range s.Points {
			if p.X == x {
				return p, true
			}
		}
		return Point{}, false
	}
	for _, x := range xs {
		fmt.Fprintf(&sb, "%-*s", w+2, x.label)
		for i, s := range r.Series {
			if p, ok := lookup(s, x.x); ok {
				fmt.Fprintf(&sb, "  %*s", colw[i], fmtSec(p.ModelSec))
			} else {
				fmt.Fprintf(&sb, "  %*s", colw[i], "-")
			}
		}
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// FormatWall renders the same table with measured wall-clock seconds.
func (r *Report) FormatWall() string {
	clone := *r
	clone.Series = make([]Series, len(r.Series))
	for i, s := range r.Series {
		cs := Series{Name: s.Name, Points: make([]Point, len(s.Points))}
		for j, p := range s.Points {
			p.ModelSec = p.Wall.Seconds()
			cs.Points[j] = p
		}
		clone.Series[i] = cs
	}
	clone.Title = r.Title + " (wall-clock)"
	return clone.Format()
}

func fmtSec(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 0.001:
		return fmt.Sprintf("%.2gms", s*1000)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1000)
	case s < 100:
		return fmt.Sprintf("%.2fs", s)
	default:
		return fmt.Sprintf("%.0fs", s)
	}
}

// SeriesByName returns the named series.
func (r *Report) SeriesByName(name string) (Series, bool) {
	for _, s := range r.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// Total returns the sum of a series' modeled seconds.
func (s Series) Total() float64 {
	var t float64
	for _, p := range s.Points {
		t += p.ModelSec
	}
	return t
}

// Runner is the registry entry for one experiment.
type Runner struct {
	ID          string
	Description string
	Run         func(Config) (*Report, error)
}

// All returns every experiment in a stable order.
func All() []Runner {
	return []Runner{
		{"fig1a", "Figure 1a: loading/initialization cost vs input size", Fig1a},
		{"fig1b", "Figure 1b: query processing cost vs input size", Fig1b},
		{"joins", "§2.2 in-text join experiment (Awk hash / sort+merge / cold DB / hot DB)", Joins},
		{"perl", "§2.2 in-text: Perl ~2x slower than Awk", Perl},
		{"fig3", "Figure 3: alternative loading operators, 20-query sequence", Fig3},
		{"fig4", "Figure 4: adaptive loading with file reorganization, 12-query sequence", Fig4},
		{"abl-pm", "Ablation: positional map on/off", AblationPositionalMap},
		{"abl-split", "Ablation: split files vs re-reading the raw file", AblationSplitFiles},
		{"abl-par", "Ablation: tokenizer worker count", AblationWorkers},
		{"abl-early", "Ablation: early row abandonment on/off", AblationEarlyAbandon},
		{"abl-budget", "Ablation: memory budget vs workload latency, cost-aware vs LRU eviction", AblationBudget},
		{"conc", "Concurrent clients: fixed workload wall-clock vs client count over one shared engine", Concurrency},
		{"warm-restart", "Warm vs cold restart: the adaptive learning curve with and without the snapshot cache", WarmRestart},
		{"synopsis", "Adaptive scan synopses: selectivity sweep with and without portion skipping", SynopsisSweep},
		{"vectorized", "Vectorized batch execution vs row-at-a-time on hot full-scan aggregates", Vectorized},
		{"cluster-scaling", "Scatter-gather cluster: cold full-scan workload speedup vs shard count", ClusterScaling},
		{"redundant-traffic", "Result cache + singleflight collapse on a 100%-duplicate workload", RedundantTraffic},
		{"tenant-isolation", "Per-tenant admission slots: light-tenant p99 under a saturating heavy tenant", TenantIsolation},
		{"append", "Append-growth: incremental tail re-adaptation vs full relearn on a 90%-prefix-stable file", Append},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// q2Range produces the paper's Q2-style predicate bounds: a `sel`-selective
// range on the first predicate column and a wide (90%) range on the
// second, over unique ints 0..rows-1.
func q2Range(rng *rand.Rand, rows int, sel float64) (lo1, hi1, lo2, hi2 int64) {
	width := int64(float64(rows) * sel)
	if width < 1 {
		width = 1
	}
	maxLo := int64(rows) - width
	if maxLo <= 0 {
		maxLo = 1
	}
	lo1 = rng.Int63n(maxLo)
	hi1 = lo1 + width
	lo2 = int64(float64(rows) * 0.05)
	hi2 = int64(float64(rows) * 0.95)
	return
}
