package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"nodb"
	"nodb/internal/qos"
	"nodb/internal/server"
)

// redundantTrafficTarget is the acceptance bar: on a 100%-duplicate
// workload, the result cache plus singleflight must cut the modeled cost
// by at least this factor versus re-executing every duplicate.
const redundantTrafficTarget = 5.0

// redundantEnforceRows is the table size above which the target turns
// from a reported number into a hard error; shape tests run far below it.
const redundantEnforceRows = 100_000

// redundantDuplicates is how many times the workload repeats each query.
const redundantDuplicates = 64

// RedundantTraffic measures what the result cache and singleflight
// collapse buy on the worst case they were built for: a workload that is
// 100% duplicates. The same aggregate query runs redundantDuplicates
// times against two engines over the same raw file — one with the result
// cache off (every duplicate re-executes, even if adaptive structures
// make re-execution cheaper than the cold first pass) and one with it on
// (the first execution pays, every duplicate answers from memory with
// zero engine work). Both series report modeled seconds from the work
// counters, so the comparison is hardware-independent like every other
// figure in this suite.
//
// A concurrent burst at the end exercises the singleflight path: fresh
// duplicates arriving while their twin is still executing collapse into
// one execution instead of racing it.
func RedundantTraffic(c Config) (*Report, error) {
	rows := c.scale(200_000)
	const cols = 4
	model := c.model()

	path, err := c.ensureTable("qoscache", rows, cols, 47)
	if err != nil {
		return nil, err
	}
	dir, err := c.dataDir()
	if err != nil {
		return nil, err
	}

	query := "select sum(a1), count(*) from R where a2 >= 10"

	// runWorkload executes the duplicate workload and returns the modeled
	// seconds of the engine work it caused.
	runWorkload := func(cacheBytes int64) (float64, error) {
		db, err := nodb.OpenErr(nodb.Options{
			Policy:           nodb.PartialLoadsV1,
			Workers:          1,
			SplitDir:         filepath.Join(dir, "qoscache_splits"),
			ResultCacheBytes: cacheBytes,
		})
		if err != nil {
			return 0, err
		}
		defer db.Close()
		if err := db.Link("R", path); err != nil {
			return 0, err
		}
		before := db.Work()
		for i := 0; i < redundantDuplicates; i++ {
			if _, err := db.Query(query); err != nil {
				return 0, err
			}
		}
		return model.Seconds(db.Work().Sub(before)), nil
	}

	startUncached := time.Now()
	uncachedSec, err := runWorkload(0)
	if err != nil {
		return nil, err
	}
	wallUncached := time.Since(startUncached)

	// Cached run on a fresh engine plus a concurrent burst of the same
	// query to exercise singleflight (the burst races the cache fill).
	db, err := nodb.OpenErr(nodb.Options{
		Policy:           nodb.PartialLoadsV1,
		Workers:          1,
		SplitDir:         filepath.Join(dir, "qoscache_splits_on"),
		ResultCacheBytes: 64 << 20,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := db.Link("R", path); err != nil {
		return nil, err
	}
	before := db.Work()
	startCached := time.Now()
	const burst = 8
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for g := 0; g < burst; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = db.QueryContext(context.Background(), query)
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i := burst; i < redundantDuplicates; i++ {
		if _, err := db.Query(query); err != nil {
			return nil, err
		}
	}
	cachedWork := db.Work().Sub(before)
	cachedSec := model.Seconds(cachedWork)
	wallCached := time.Since(startCached)
	cstats := db.ResultCacheStats()

	speedup := uncachedSec / cachedSec
	notes := []string{
		fmt.Sprintf("%s x %d attrs, %d duplicates of one aggregate (first %d fired concurrently)",
			sizeLabel(rows), cols, redundantDuplicates, burst),
		fmt.Sprintf("cache: hits=%d misses=%d entries=%d bytes=%d; collapsed in flight=%d",
			cstats.Hits, cstats.Misses, cstats.Entries, cstats.Bytes, cachedWork.QueriesCollapsed),
		fmt.Sprintf("speedup: %.1fx modeled (target >= %.0fx); wall-clock %s -> %s",
			speedup, redundantTrafficTarget, wallUncached.Round(time.Millisecond), wallCached.Round(time.Millisecond)),
	}
	if rows >= redundantEnforceRows && speedup < redundantTrafficTarget {
		return nil, fmt.Errorf("redundant-traffic: speedup %.2fx is below the %.0fx target (uncached %s, cached %s)",
			speedup, redundantTrafficTarget, fmtSec(uncachedSec), fmtSec(cachedSec))
	}

	return &Report{
		ID:    "redundant-traffic",
		Title: "Result cache + singleflight on a 100%-duplicate workload",
		XAxis: "workload",
		Series: []Series{
			{Name: "no cache", Points: []Point{{X: 1, Label: fmt.Sprintf("%d duplicates", redundantDuplicates), ModelSec: uncachedSec, Wall: wallUncached}}},
			{Name: "cache+singleflight", Points: []Point{{X: 1, Label: fmt.Sprintf("%d duplicates", redundantDuplicates), ModelSec: cachedSec, Wall: wallCached, Work: cachedWork}}},
		},
		Notes: notes,
	}, nil
}

// tenantIsolationEnforceRows gates the hard latency assertion, like the
// other experiments' enforce thresholds.
const tenantIsolationEnforceRows = 100_000

// tenantLightProbes is how many sequential queries the light tenant runs
// per phase; the p99 is taken over these.
const tenantLightProbes = 40

// TenantIsolation demonstrates per-tenant admission partitioning: a heavy
// tenant saturating the server with full-scan aggregates must not
// meaningfully move a light tenant's p99. Three phases against httptest
// servers over one table: the light tenant alone (its solo p99), the
// light tenant while the heavy tenant saturates a server WITH per-tenant
// slot partitioning, and the same contention on a server WITHOUT
// partitioning (one shared slot pool) for contrast — there the heavy
// tenant's queries occupy every slot and the light tenant spins on 429s.
//
// The acceptance bar is the partitioned phase: light p99 <= max(2x solo
// p99, solo p99 + 250ms), enforced at full experiment scale.
func TenantIsolation(c Config) (*Report, error) {
	rows := c.scale(300_000)
	const cols = 4

	path, err := c.ensureTable("qostenant", rows, cols, 53)
	if err != nil {
		return nil, err
	}
	// The light tenant owns its own (smaller) table, as tenants do: the
	// experiment isolates the serving layer's admission control, not
	// storage-level lock contention on one shared table.
	lightRows := rows / 4
	if lightRows < 10 {
		lightRows = 10
	}
	lightPath, err := c.ensureTable("qostenant_light", lightRows, cols, 59)
	if err != nil {
		return nil, err
	}
	dir, err := c.dataDir()
	if err != nil {
		return nil, err
	}

	tenants := []nodb.TenantConfig{
		{Name: "heavy", Key: "heavy-key", Weight: 1},
		{Name: "light", Key: "light-key", Weight: 1},
	}

	openServer := func(splitSuffix string, partitioned bool) (*nodb.DB, *httptest.Server, error) {
		opts := nodb.Options{
			Policy:   nodb.PartialLoadsV2,
			Workers:  1,
			SplitDir: filepath.Join(dir, "qostenant_splits_"+splitSuffix),
		}
		var reg *qos.Registry
		if partitioned {
			opts.Tenants = tenants
			r, err := qos.NewRegistry(tenants, false)
			if err != nil {
				return nil, nil, err
			}
			reg = r
		}
		db, err := nodb.OpenErr(opts)
		if err != nil {
			return nil, nil, err
		}
		if err := db.Link("R", path); err != nil {
			db.Close()
			return nil, nil, err
		}
		if err := db.Link("L", lightPath); err != nil {
			db.Close()
			return nil, nil, err
		}
		srv := server.New(server.Config{DB: db, MaxInFlight: 4, Tenants: reg})
		srv.MarkReady()
		return db, httptest.NewServer(srv), nil
	}

	post := func(client *http.Client, url, apikey, query string) (int, error) {
		body, _ := json.Marshal(map[string]string{"query": query})
		req, err := http.NewRequest(http.MethodPost, url+"/v1/query", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-API-Key", apikey)
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	lightQuery := "select count(*) from L where a1 < 1000"
	heavyQuery := func(i int) string {
		// Vary the predicate so neither plan shortcuts nor a result cache
		// could ever absorb the load; every request re-scans.
		return fmt.Sprintf("select sum(a1), sum(a2), sum(a3), count(*) from R where a4 >= %d", i%97)
	}

	// lightPhase runs the light tenant's probes sequentially, retrying on
	// 429 (what a real client does), and returns the p99 latency over
	// probes — each latency including any retry spinning.
	lightPhase := func(ts *httptest.Server) (time.Duration, error) {
		client := ts.Client()
		lat := make([]time.Duration, 0, tenantLightProbes)
		for i := 0; i < tenantLightProbes; i++ {
			start := time.Now()
			for {
				code, err := post(client, ts.URL, "light-key", lightQuery)
				if err != nil {
					return 0, err
				}
				if code == http.StatusOK {
					break
				}
				if code != http.StatusTooManyRequests {
					return 0, fmt.Errorf("tenant-isolation: light query got http %d", code)
				}
				time.Sleep(2 * time.Millisecond)
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[(len(lat)*99)/100], nil
	}

	// saturate launches heavy-tenant clients hammering the server until
	// stop is closed. 429s are expected (the tenant is over its share) and
	// retried after a short backoff — the Retry-After discipline a real
	// client follows; without it the retry spin itself becomes a CPU
	// denial-of-service that no admission controller can partition.
	saturate := func(ts *httptest.Server, stop chan struct{}, done *sync.WaitGroup) {
		const heavyClients = 8
		for g := 0; g < heavyClients; g++ {
			done.Add(1)
			go func(g int) {
				defer done.Done()
				client := ts.Client()
				for i := g; ; i += heavyClients {
					select {
					case <-stop:
						return
					default:
					}
					code, _ := post(client, ts.URL, "heavy-key", heavyQuery(i))
					if code == http.StatusTooManyRequests {
						time.Sleep(5 * time.Millisecond)
					}
				}
			}(g)
		}
	}

	measure := func(partitioned bool, suffix string) (solo, loaded time.Duration, err error) {
		db, ts, err := openServer(suffix, partitioned)
		if err != nil {
			return 0, 0, err
		}
		defer db.Close()
		defer ts.Close()
		// Warm the light tenant's column so its queries measure serving
		// latency, not first-touch loading.
		if code, err := post(ts.Client(), ts.URL, "light-key", lightQuery); err != nil || code != http.StatusOK {
			return 0, 0, fmt.Errorf("tenant-isolation: warmup got http %d (err %v)", code, err)
		}
		solo, err = lightPhase(ts)
		if err != nil {
			return 0, 0, err
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		saturate(ts, stop, &wg)
		// Let the heavy tenant actually occupy its slots before probing.
		time.Sleep(50 * time.Millisecond)
		loaded, err = lightPhase(ts)
		close(stop)
		wg.Wait()
		if err != nil {
			return 0, 0, err
		}
		return solo, loaded, nil
	}

	soloPart, loadedPart, err := measure(true, "part")
	if err != nil {
		return nil, err
	}
	soloShared, loadedShared, err := measure(false, "shared")
	if err != nil {
		return nil, err
	}

	bound := 2 * soloPart
	if floor := soloPart + 250*time.Millisecond; bound < floor {
		bound = floor
	}
	notes := []string{
		fmt.Sprintf("%s x %d attrs; 4 admission slots; heavy tenant: 8 clients of full-scan aggregates; light tenant: %d sequential count(*) probes",
			sizeLabel(rows), cols, tenantLightProbes),
		fmt.Sprintf("partitioned slots: light p99 %s solo -> %s under saturation (bound %s)",
			soloPart.Round(time.Microsecond), loadedPart.Round(time.Microsecond), bound.Round(time.Microsecond)),
		fmt.Sprintf("shared slots (no tenants): light p99 %s solo -> %s under saturation",
			soloShared.Round(time.Microsecond), loadedShared.Round(time.Microsecond)),
	}
	if rows >= tenantIsolationEnforceRows && loadedPart > bound {
		return nil, fmt.Errorf("tenant-isolation: light tenant p99 %s under heavy load exceeds bound %s (solo %s)",
			loadedPart.Round(time.Microsecond), bound.Round(time.Microsecond), soloPart.Round(time.Microsecond))
	}

	point := func(x float64, label string, d time.Duration) Point {
		return Point{X: x, Label: label, ModelSec: d.Seconds(), Wall: d}
	}
	return &Report{
		ID:    "tenant-isolation",
		Title: "Per-tenant admission slots: light-tenant p99 under a saturating heavy tenant",
		XAxis: "phase",
		Series: []Series{
			{Name: "partitioned", Points: []Point{point(1, "solo", soloPart), point(2, "under load", loadedPart)}},
			{Name: "shared pool", Points: []Point{point(1, "solo", soloShared), point(2, "under load", loadedShared)}},
		},
		Notes: notes,
	}, nil
}
