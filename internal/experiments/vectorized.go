package experiments

import (
	"fmt"
	"time"

	"nodb/internal/core"
	"nodb/internal/plan"
)

// vectorizedTarget is the acceptance bar for the batch pipeline: on a hot
// full-scan aggregate the vectorized operators must beat the
// row-at-a-time path by at least this factor. Enforced at experiment
// scale (the default nodbbench run), where the measurement is stable.
const vectorizedTarget = 1.5

// vectorizedEnforceRows is the table size above which the speedup target
// turns from a reported number into a hard error. Shape tests run at a
// few thousand rows, where per-query fixed costs drown the execution
// delta; the default experiment scale is far above this line.
const vectorizedEnforceRows = 200_000

// Vectorized measures the batch-operator execution core against the
// row-at-a-time path it replaced. Both engines fully load the table first
// (ColumnLoads + a warm-up query), so every measured query runs entirely
// from memory: the delta is pure execution machinery — per-batch column
// slices, selection vectors and fused aggregate loops versus per-row
// Value slices, interface dispatch and per-row predicate evaluation.
//
// The x axis sweeps predicate selectivity; the headline point is the full
// scan (100%), where the aggregate consumes every row and the pipeline's
// advantage is largest. At default scale the experiment fails unless the
// full-scan speedup reaches vectorizedTarget.
func Vectorized(c Config) (*Report, error) {
	rows := c.scale(1_000_000)
	const cols = 4

	path, err := c.ensureTable("vectorized", rows, cols, 73)
	if err != nil {
		return nil, err
	}

	workers := c.Workers
	if workers == 0 {
		workers = 1
	}
	mkEngine := func(disable bool) (*core.Engine, error) {
		eng := core.NewEngine(core.Options{
			Policy:            plan.PolicyColumnLoads,
			Workers:           workers,
			ChunkSize:         c.ChunkSize,
			DisableVectorExec: disable,
		})
		if err := eng.Link("R", path); err != nil {
			eng.Close()
			return nil, err
		}
		// Warm-up: load every column the workload touches, so the sweep
		// below never touches the raw file.
		if _, err := eng.Query("select sum(a1), sum(a2) from R"); err != nil {
			eng.Close()
			return nil, err
		}
		return eng, nil
	}

	selectivities := []float64{0.10, 0.50, 1.00}
	series := []Series{{Name: "batch pipeline"}, {Name: "row-at-a-time"}}
	for si, disable := range []bool{false, true} {
		eng, err := mkEngine(disable)
		if err != nil {
			return nil, err
		}
		for _, sel := range selectivities {
			// a2 is a permutation of 0..rows-1: a half-open upper bound at
			// sel*rows qualifies exactly that fraction of rows.
			q := fmt.Sprintf("select sum(a1), min(a2), count(*) from R where a2 < %d", int64(float64(rows)*sel))
			// Best-of-3 wall clock: hot in-memory queries are fast enough
			// that a single run is at the mercy of the scheduler.
			var best time.Duration
			var p Point
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				res, err := eng.Query(q)
				elapsed := time.Since(start)
				if err != nil {
					eng.Close()
					return nil, fmt.Errorf("%s sel=%.2f: %w", series[si].Name, sel, err)
				}
				if res.Stats.Work.RawBytesRead != 0 {
					eng.Close()
					return nil, fmt.Errorf("%s sel=%.2f: read %d raw bytes on a hot table", series[si].Name, sel, res.Stats.Work.RawBytesRead)
				}
				if rep == 0 || elapsed < best {
					best = elapsed
					p = Point{
						X: sel * 100, Label: fmt.Sprintf("%g%%", sel*100),
						ModelSec: elapsed.Seconds(), Wall: elapsed,
						Work: res.Stats.Work,
					}
				}
			}
			series[si].Points = append(series[si].Points, p)
		}
		eng.Close()
	}

	vec, row := series[0], series[1]
	notes := []string{
		fmt.Sprintf("%s x %d attrs, fully loaded before measurement; best of 3 runs, wall-clock", sizeLabel(rows), cols),
	}
	var fullScan float64
	for i, sel := range selectivities {
		ratio := 0.0
		if vec.Points[i].ModelSec > 0 {
			ratio = row.Points[i].ModelSec / vec.Points[i].ModelSec
		}
		if sel == 1.0 {
			fullScan = ratio
		}
		notes = append(notes, fmt.Sprintf("selectivity %g%%: row-at-a-time %s vs batch %s (%.1fx)",
			sel*100, fmtSec(row.Points[i].ModelSec), fmtSec(vec.Points[i].ModelSec), ratio))
	}
	notes = append(notes, fmt.Sprintf("full-scan target: >= %.1fx", vectorizedTarget))
	if rows >= vectorizedEnforceRows && fullScan < vectorizedTarget {
		return nil, fmt.Errorf("vectorized: full-scan speedup %.2fx is below the %.1fx target (row %s, batch %s)",
			fullScan, vectorizedTarget, fmtSec(row.Points[len(row.Points)-1].ModelSec), fmtSec(vec.Points[len(vec.Points)-1].ModelSec))
	}

	return &Report{
		ID:     "vectorized",
		Title:  "Vectorized batch execution vs row-at-a-time, hot full-scan aggregates (wall-clock)",
		XAxis:  "selectivity",
		Series: []Series{vec, row},
		Notes:  notes,
	}, nil
}
