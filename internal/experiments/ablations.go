package experiments

import (
	"fmt"
	"os"

	"nodb/internal/catalog"
	"nodb/internal/expr"
	"nodb/internal/loader"
	"nodb/internal/metrics"
	"nodb/internal/storage"
)

// AblationPositionalMap measures the positional map's effect: after a load
// that recorded attribute positions, loading a later attribute either
// re-tokenizes each row from the start (off) or jumps to the recorded
// anchor (on).
func AblationPositionalMap(c Config) (*Report, error) {
	rows := c.scale(300_000)
	const cols = 10
	path, err := c.ensureTable("ablpm", rows, cols, 5)
	if err != nil {
		return nil, err
	}
	model := fig34Model(c)

	run := func(use bool) (Point, error) {
		var counters metrics.Counters
		cat := catalog.New(catalog.Options{Counters: &counters})
		tab, err := cat.Link("R", path)
		if err != nil {
			return Point{}, err
		}
		ld := &loader.Loader{Counters: &counters, RecordPositions: true, UsePositions: use}
		// Warm load: column 5, recording positions (not measured).
		if err := ld.ColumnLoad(tab, []int{5}); err != nil {
			return Point{}, err
		}
		counters.Reset()
		timer := metrics.StartTimer()
		if err := ld.ColumnLoad(tab, []int{8}); err != nil {
			return Point{}, err
		}
		work := counters.Snapshot()
		return Point{
			X: 1, Label: "load a9 after a6",
			ModelSec: model.Seconds(work), Wall: timer.Elapsed(), Work: work,
		}, nil
	}
	on, err := run(true)
	if err != nil {
		return nil, err
	}
	off, err := run(false)
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:     "abl-pm",
		Title:  fmt.Sprintf("Positional map on/off (%s x %d attrs)", sizeLabel(rows), cols),
		XAxis:  "scenario",
		Series: []Series{{Name: "posmap on", Points: []Point{on}}, {Name: "posmap off", Points: []Point{off}}},
		Notes: []string{
			fmt.Sprintf("attrs tokenized: on=%d off=%d (on jumps to the recorded anchor attribute)",
				on.Work.AttrsTokenized, off.Work.AttrsTokenized),
		},
	}, nil
}

// AblationSplitFiles measures what split files save when the workload
// returns for more columns: total bytes read over a 4-step column-loading
// sequence, with and without file splitting.
func AblationSplitFiles(c Config) (*Report, error) {
	rows := c.scale(300_000)
	const cols = 12
	path, err := c.ensureTable("ablsplit", rows, cols, 6)
	if err != nil {
		return nil, err
	}
	model := fig34Model(c)
	sequence := [][]int{{10, 11}, {6, 7}, {2, 3}, {0, 1}}

	run := func(split bool) (Series, error) {
		var counters metrics.Counters
		splitDir, err := os.MkdirTemp("", "nodb-ablsplit-*")
		if err != nil {
			return Series{}, err
		}
		defer os.RemoveAll(splitDir)
		cat := catalog.New(catalog.Options{Counters: &counters, SplitDir: splitDir})
		tab, err := cat.Link("R", path)
		if err != nil {
			return Series{}, err
		}
		ld := &loader.Loader{Counters: &counters}
		name := "column loads"
		if split {
			name = "split files"
		}
		s := Series{Name: name}
		for i, colset := range sequence {
			before := counters.Snapshot()
			timer := metrics.StartTimer()
			if split {
				err = ld.SplitColumnLoad(tab, colset)
			} else {
				err = ld.ColumnLoad(tab, colset)
			}
			if err != nil {
				return Series{}, err
			}
			work := counters.Snapshot().Sub(before)
			s.Points = append(s.Points, Point{
				X: float64(i + 1), Label: fmt.Sprintf("load %v", colset),
				ModelSec: model.Seconds(work), Wall: timer.Elapsed(), Work: work,
			})
		}
		return s, nil
	}
	withSplit, err := run(true)
	if err != nil {
		return nil, err
	}
	without, err := run(false)
	if err != nil {
		return nil, err
	}
	var splitBytes, plainBytes int64
	for _, p := range withSplit.Points {
		splitBytes += p.Work.RawBytesRead + p.Work.SplitBytesRead
	}
	for _, p := range without.Points {
		plainBytes += p.Work.RawBytesRead
	}
	return &Report{
		ID:     "abl-split",
		Title:  fmt.Sprintf("Split files vs re-reading the raw file (%s x %d attrs)", sizeLabel(rows), cols),
		XAxis:  "load step",
		Series: []Series{without, withSplit},
		Notes: []string{
			fmt.Sprintf("file bytes read over the sequence: plain=%d split=%d (%.1fx less)",
				plainBytes, splitBytes, float64(plainBytes)/float64(splitBytes)),
		},
	}, nil
}

// AblationWorkers measures tokenizer parallelism on a full load. On a
// single-core box the wall-clock benefit is nil; the experiment verifies
// correctness of the parallel path and reports the measured times.
func AblationWorkers(c Config) (*Report, error) {
	rows := c.scale(500_000)
	path, err := c.ensureTable("ablpar", rows, 8, 9)
	if err != nil {
		return nil, err
	}
	wall := Series{Name: "wall-clock"}
	for _, w := range []int{1, 2, 4} {
		var counters metrics.Counters
		cat := catalog.New(catalog.Options{Counters: &counters})
		tab, err := cat.Link("R", path)
		if err != nil {
			return nil, err
		}
		ld := &loader.Loader{Counters: &counters, Workers: w}
		timer := metrics.StartTimer()
		if err := ld.FullLoad(tab); err != nil {
			return nil, err
		}
		elapsed := timer.Elapsed()
		wall.Points = append(wall.Points, Point{
			X: float64(w), Label: fmt.Sprintf("%d workers", w),
			ModelSec: elapsed.Seconds(), Wall: elapsed, Work: counters.Snapshot(),
		})
	}
	return &Report{
		ID:     "abl-par",
		Title:  fmt.Sprintf("Tokenizer worker count, full load (%s x 8 attrs; measured wall-clock)", sizeLabel(rows)),
		XAxis:  "workers",
		Series: []Series{wall},
		Notes:  []string{"Wall-clock parity is expected on a single-core machine; the parallel path's correctness is covered by tests."},
	}, nil
}

// AblationEarlyAbandon measures early row abandonment in the partial
// loading operator: a 1%-selective predicate on the first attribute lets
// the tokenizer skip the rest of almost every row.
func AblationEarlyAbandon(c Config) (*Report, error) {
	rows := c.scale(500_000)
	path, err := c.ensureTable("ablearly", rows, 8, 10)
	if err != nil {
		return nil, err
	}
	model := c.model()
	conj := expr.Conjunction{Preds: []expr.Pred{
		{Col: 0, Op: expr.Lt, Val: storage.IntValue(int64(rows) / 100)},
	}}
	need := []int{0, 7} // forces tokenizing the whole row when not abandoning

	run := func(name string, disable bool) (Series, error) {
		var counters metrics.Counters
		cat := catalog.New(catalog.Options{Counters: &counters})
		tab, err := cat.Link("R", path)
		if err != nil {
			return Series{}, err
		}
		ld := &loader.Loader{Counters: &counters, DisableEarlyAbandon: disable}
		timer := metrics.StartTimer()
		if _, err := ld.PartialScan(tab, need, conj, 0); err != nil {
			return Series{}, err
		}
		work := counters.Snapshot()
		return Series{Name: name, Points: []Point{{
			X: 1, Label: "1% selective scan",
			ModelSec: model.Seconds(work), Wall: timer.Elapsed(), Work: work,
		}}}, nil
	}
	withAbandon, err := run("early abandon", false)
	if err != nil {
		return nil, err
	}
	without, err := run("no abandon", true)
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:     "abl-early",
		Title:  fmt.Sprintf("Early row abandonment (%s x 8 attrs, 1%% selective)", sizeLabel(rows)),
		XAxis:  "scenario",
		Series: []Series{withAbandon, without},
		Notes: []string{
			fmt.Sprintf("attrs tokenized: abandon=%d full=%d; values parsed: %d vs %d",
				withAbandon.Points[0].Work.AttrsTokenized, without.Points[0].Work.AttrsTokenized,
				withAbandon.Points[0].Work.ValuesParsed, without.Points[0].Work.ValuesParsed),
		},
	}, nil
}
