package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"nodb/internal/core"
	"nodb/internal/csvgen"
	"nodb/internal/metrics"
	"nodb/internal/plan"
)

// SynopsisSweep measures the scan synopsis' selectivity curve: after one
// learning pass (which builds per-portion zone maps as a free byproduct),
// selective queries on a clustered attribute skip the portions whose
// value bounds exclude the predicate — reading a handful of portions
// instead of re-tokenizing the whole file. The baseline engine is
// identical except the synopsis is disabled, so every query re-pays the
// full raw-file pass (the pre-PR behavior).
//
// The workload models the common log-file shape: attribute a1 is
// monotone (a timestamp or sequence id), so value ranges cluster into
// byte ranges. Both engines run PolicyPartialV1 — the selective loading
// operator with no retention — which isolates the cost of the raw scan
// itself: any speedup is portion skipping, not caching.
//
// The headline number (asserted in tests and recorded in BENCH_pr5.json
// by CI): a 1%-selectivity query after one prior pass runs >= 3x faster
// than the full re-scan.
func SynopsisSweep(c Config) (*Report, error) {
	rows := c.scale(400_000)
	const cols = 6
	model := c.model()

	dir, err := c.dataDir()
	if err != nil {
		return nil, err
	}
	// a1 is sequential (clustered); the rest are the paper's shuffled
	// unique ints.
	path := filepath.Join(dir, fmt.Sprintf("synsweep_%dx%d.csv", rows, cols))
	spec := csvgen.Spec{Rows: rows, Cols: cols, Seed: 41, ColSpecs: []csvgen.ColSpec{{Kind: csvgen.SequentialInts}}}
	if err := csvgen.EnsureFile(path, spec); err != nil {
		return nil, err
	}

	// Aim for a few dozen portions regardless of scale so the sweep is
	// meaningful at test sizes too (Config.ChunkSize still wins).
	chunk := c.ChunkSize
	if chunk == 0 {
		st, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		chunk = int(st.Size() / 32)
		if chunk < 4<<10 {
			chunk = 4 << 10
		}
		if chunk > 1<<20 {
			chunk = 1 << 20
		}
	}

	// Both engines run sequential scans (unless Config overrides): the
	// baseline then reads the file exactly once per query — the true
	// pre-PR behavior — instead of also paying a per-query layout
	// pre-pass, and the measured ratio isolates portion skipping.
	workers := c.Workers
	if workers == 0 {
		workers = 1
	}
	mkEngine := func(disable bool) (*core.Engine, error) {
		eng := core.NewEngine(core.Options{
			Policy:              plan.PolicyPartialV1,
			Workers:             workers,
			ChunkSize:           chunk,
			DisableSynopsis:     disable,
			DisableRevalidation: true,
		})
		if err := eng.Link("R", path); err != nil {
			eng.Close()
			return nil, err
		}
		// The learning pass: a wide query over (a1, a3). With the synopsis
		// enabled it leaves behind the portion layout and zone maps; the
		// baseline leaves nothing, by construction.
		if _, err := eng.Query("select sum(a3) from R where a1 >= 0"); err != nil {
			eng.Close()
			return nil, err
		}
		return eng, nil
	}

	selectivities := []float64{0.01, 0.05, 0.25, 1.0}
	series := []Series{{Name: "synopsis skip"}, {Name: "full re-scan"}}
	for si, disable := range []bool{false, true} {
		eng, err := mkEngine(disable)
		if err != nil {
			return nil, err
		}
		for _, sel := range selectivities {
			width := int64(float64(rows) * sel)
			if width < 1 {
				width = 1
			}
			lo := int64(rows) / 3 // mid-file window: interior portions skip
			if lo+width > int64(rows) {
				lo = int64(rows) - width
			}
			q := fmt.Sprintf("select sum(a3) from R where a1 >= %d and a1 < %d", lo, lo+width)
			timer := metrics.StartTimer()
			res, err := eng.Query(q)
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("%s sel=%.2f: %w", series[si].Name, sel, err)
			}
			series[si].Points = append(series[si].Points, Point{
				X: sel * 100, Label: fmt.Sprintf("%g%%", sel*100),
				ModelSec: model.Seconds(res.Stats.Work),
				Wall:     timer.Elapsed(),
				Work:     res.Stats.Work,
			})
		}
		eng.Close()
	}

	syn, full := series[0], series[1]
	notes := []string{
		fmt.Sprintf("%s rows, chunk %d bytes; a1 clustered (log-file shape); 1%% query skipped %d portions",
			sizeLabel(rows), chunk, syn.Points[0].Work.PortionsSkipped),
	}
	for i, sel := range selectivities {
		ratio := 0.0
		if syn.Points[i].ModelSec > 0 {
			ratio = full.Points[i].ModelSec / syn.Points[i].ModelSec
		}
		notes = append(notes, fmt.Sprintf("selectivity %g%%: full re-scan %s vs synopsis %s (%.1fx)",
			sel*100, fmtSec(full.Points[i].ModelSec), fmtSec(syn.Points[i].ModelSec), ratio))
	}

	return &Report{
		ID:     "synopsis",
		Title:  "Adaptive scan synopses: selective query cost after one learning pass",
		XAxis:  "selectivity",
		Series: []Series{syn, full},
		Notes:  notes,
	}, nil
}
