// Package intervals implements an ordered set of disjoint half-open int64
// intervals backed by an AVL tree.
//
// The paper (§3.1.3) keeps, for every partially loaded column, "the
// information of which parts are already loaded and where and how they are
// stored. A tree structure that organizes the data parts of each column
// based on values is sufficient, e.g., an AVL-tree or a B-tree." This
// package is that structure: the adaptive store records covered value
// ranges (and covered row ranges) in a Set, asks it whether a query's range
// is already covered, and asks for the gaps when it is not.
package intervals

import (
	"fmt"
	"strings"
)

// Interval is the half-open range [Lo, Hi). An interval with Hi <= Lo is
// empty.
type Interval struct {
	Lo, Hi int64
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Len returns the number of points in the interval (0 for empty ones).
func (iv Interval) Len() int64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether x lies in [Lo, Hi).
func (iv Interval) Contains(x int64) bool { return x >= iv.Lo && x < iv.Hi }

// ContainsInterval reports whether o is entirely inside iv. Empty o is
// contained in anything.
func (iv Interval) ContainsInterval(o Interval) bool {
	if o.Empty() {
		return true
	}
	return o.Lo >= iv.Lo && o.Hi <= iv.Hi
}

// Overlaps reports whether the two intervals share at least one point.
func (iv Interval) Overlaps(o Interval) bool {
	return !iv.Empty() && !o.Empty() && iv.Lo < o.Hi && o.Lo < iv.Hi
}

// Intersect returns the overlap of the two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

// node is an AVL tree node holding one disjoint interval.
type node struct {
	iv          Interval
	left, right *node
	height      int
}

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *node) fix() *node {
	n.height = 1 + max(height(n.left), height(n.right))
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = n.left.rotateLeft()
		}
		return n.rotateRight()
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = n.right.rotateRight()
		}
		return n.rotateLeft()
	}
	return n
}

func (n *node) rotateRight() *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.height = 1 + max(height(n.left), height(n.right))
	l.height = 1 + max(height(l.left), height(l.right))
	return l
}

func (n *node) rotateLeft() *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.height = 1 + max(height(n.left), height(n.right))
	r.height = 1 + max(height(r.left), height(r.right))
	return r
}

func insert(n *node, iv Interval) *node {
	if n == nil {
		return &node{iv: iv, height: 1}
	}
	if iv.Lo < n.iv.Lo {
		n.left = insert(n.left, iv)
	} else {
		n.right = insert(n.right, iv)
	}
	return n.fix()
}

// deleteMin removes and returns the minimum node of the subtree.
func deleteMin(n *node) (rest, min *node) {
	if n.left == nil {
		return n.right, n
	}
	n.left, min = deleteMin(n.left)
	return n.fix(), min
}

func remove(n *node, lo int64) *node {
	if n == nil {
		return nil
	}
	switch {
	case lo < n.iv.Lo:
		n.left = remove(n.left, lo)
	case lo > n.iv.Lo:
		n.right = remove(n.right, lo)
	default:
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		var succ *node
		n.right, succ = deleteMin(n.right)
		succ.left, succ.right = n.left, n.right
		return succ.fix()
	}
	return n.fix()
}

// Set is a set of int64 points represented as disjoint half-open intervals
// in an AVL tree. The zero value is an empty set ready for use. Set is not
// safe for concurrent mutation; the catalog guards it with its own lock.
type Set struct {
	root  *node
	count int   // number of disjoint intervals
	total int64 // number of covered points
}

// Len returns the number of disjoint intervals in the set.
func (s *Set) Len() int { return s.count }

// Total returns the number of covered points.
func (s *Set) Total() int64 { return s.total }

// Height returns the AVL tree height (for tests of balance).
func (s *Set) Height() int { return height(s.root) }

// Add inserts [lo, hi) into the set, merging any intervals it touches or
// overlaps. Adding an empty interval is a no-op.
func (s *Set) Add(iv Interval) {
	if iv.Empty() {
		return
	}
	// Merge with every stored interval that overlaps or is adjacent to iv.
	// Adjacency ([1,3) + [3,5)) merges too, keeping the representation
	// canonical.
	for {
		ov := s.findTouching(iv)
		if ov == nil {
			break
		}
		if ov.Lo < iv.Lo {
			iv.Lo = ov.Lo
		}
		if ov.Hi > iv.Hi {
			iv.Hi = ov.Hi
		}
		s.root = remove(s.root, ov.Lo)
		s.count--
		s.total -= ov.Len()
	}
	s.root = insert(s.root, iv)
	s.count++
	s.total += iv.Len()
}

// findTouching returns any stored interval that overlaps or is adjacent to
// iv, or nil.
func (s *Set) findTouching(iv Interval) *Interval {
	n := s.root
	for n != nil {
		// Adjacent-or-overlapping test against the widened interval.
		if n.iv.Lo <= iv.Hi && iv.Lo <= n.iv.Hi {
			out := n.iv
			return &out
		}
		if iv.Hi < n.iv.Lo {
			n = n.left
		} else {
			n = n.right
		}
	}
	return nil
}

// Contains reports whether the point x is covered.
func (s *Set) Contains(x int64) bool {
	n := s.root
	for n != nil {
		switch {
		case n.iv.Contains(x):
			return true
		case x < n.iv.Lo:
			n = n.left
		default:
			n = n.right
		}
	}
	return false
}

// Covers reports whether every point of iv is covered by the set. Because
// stored intervals are kept disjoint and merged when adjacent, iv is covered
// iff a single stored interval contains it.
func (s *Set) Covers(iv Interval) bool {
	if iv.Empty() {
		return true
	}
	n := s.root
	for n != nil {
		switch {
		case n.iv.ContainsInterval(iv):
			return true
		case iv.Hi <= n.iv.Lo:
			n = n.left
		case iv.Lo >= n.iv.Hi:
			n = n.right
		default:
			// Partial overlap with a maximal stored interval: since
			// intervals are disjoint and non-adjacent, the remainder
			// cannot be covered elsewhere.
			return false
		}
	}
	return false
}

// Missing returns the sub-intervals of iv not covered by the set, in
// ascending order. An empty result means iv is fully covered.
func (s *Set) Missing(iv Interval) []Interval {
	if iv.Empty() {
		return nil
	}
	var covered []Interval
	collectOverlaps(s.root, iv, &covered)
	var gaps []Interval
	cursor := iv.Lo
	for _, c := range covered { // covered arrives sorted by Lo
		if c.Lo > cursor {
			gaps = append(gaps, Interval{Lo: cursor, Hi: c.Lo})
		}
		if c.Hi > cursor {
			cursor = c.Hi
		}
	}
	if cursor < iv.Hi {
		gaps = append(gaps, Interval{Lo: cursor, Hi: iv.Hi})
	}
	return gaps
}

func collectOverlaps(n *node, iv Interval, out *[]Interval) {
	if n == nil {
		return
	}
	if iv.Lo < n.iv.Hi { // left subtree may overlap
		collectOverlaps(n.left, iv, out)
	}
	if n.iv.Overlaps(iv) {
		*out = append(*out, n.iv.Intersect(iv))
	}
	if iv.Hi > n.iv.Lo { // right subtree may overlap
		collectOverlaps(n.right, iv, out)
	}
}

// All returns the disjoint intervals in ascending order.
func (s *Set) All() []Interval {
	out := make([]Interval, 0, s.count)
	var walk func(*node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.iv)
		walk(n.right)
	}
	walk(s.root)
	return out
}

// Clear removes all intervals.
func (s *Set) Clear() { s.root, s.count, s.total = nil, 0, 0 }

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{count: s.count, total: s.total}
	var cp func(*node) *node
	cp = func(n *node) *node {
		if n == nil {
			return nil
		}
		return &node{iv: n.iv, left: cp(n.left), right: cp(n.right), height: n.height}
	}
	c.root = cp(s.root)
	return c
}

func (s *Set) String() string {
	ivs := s.All()
	parts := make([]string, len(ivs))
	for i, iv := range ivs {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}
