package intervals

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 2, Hi: 5}
	if iv.Empty() {
		t.Fatal("non-empty interval reported empty")
	}
	if got := iv.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if !iv.Contains(2) || !iv.Contains(4) {
		t.Error("Contains should include Lo and Hi-1")
	}
	if iv.Contains(5) {
		t.Error("Contains should exclude Hi (half-open)")
	}
	if (Interval{Lo: 3, Hi: 3}).Len() != 0 {
		t.Error("empty interval should have zero length")
	}
	if (Interval{Lo: 5, Hi: 2}).Len() != 0 {
		t.Error("inverted interval should have zero length")
	}
}

func TestIntervalOverlapIntersect(t *testing.T) {
	cases := []struct {
		a, b    Interval
		overlap bool
		inter   Interval
	}{
		{Interval{0, 10}, Interval{5, 15}, true, Interval{5, 10}},
		{Interval{0, 10}, Interval{10, 20}, false, Interval{10, 10}},
		{Interval{0, 10}, Interval{2, 3}, true, Interval{2, 3}},
		{Interval{5, 5}, Interval{0, 10}, false, Interval{5, 5}},
		{Interval{0, 1}, Interval{1, 2}, false, Interval{1, 1}},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.overlap {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.overlap)
		}
		if got := c.a.Intersect(c.b); got.Len() != c.inter.Len() || (!got.Empty() && got != c.inter) {
			t.Errorf("%v.Intersect(%v) = %v, want %v", c.a, c.b, got, c.inter)
		}
	}
}

func TestSetAddAndCovers(t *testing.T) {
	var s Set
	s.Add(Interval{10, 20})
	s.Add(Interval{30, 40})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Covers(Interval{12, 18}) {
		t.Error("should cover inner interval")
	}
	if s.Covers(Interval{15, 35}) {
		t.Error("should not cover a range spanning the gap")
	}
	if !s.Covers(Interval{10, 20}) {
		t.Error("should cover an exact stored interval")
	}
	if s.Covers(Interval{9, 11}) {
		t.Error("should not cover range starting before the set")
	}
}

func TestSetMergeOverlapping(t *testing.T) {
	var s Set
	s.Add(Interval{10, 20})
	s.Add(Interval{15, 25}) // overlaps
	if s.Len() != 1 {
		t.Fatalf("overlapping intervals should merge, Len = %d", s.Len())
	}
	if !s.Covers(Interval{10, 25}) {
		t.Error("merged interval should cover the union")
	}
	if s.Total() != 15 {
		t.Errorf("Total = %d, want 15", s.Total())
	}
}

func TestSetMergeAdjacent(t *testing.T) {
	var s Set
	s.Add(Interval{0, 5})
	s.Add(Interval{5, 10})
	if s.Len() != 1 {
		t.Fatalf("adjacent intervals should merge, Len = %d", s.Len())
	}
	if !s.Covers(Interval{0, 10}) {
		t.Error("union should be covered after adjacent merge")
	}
}

func TestSetMergeBridging(t *testing.T) {
	var s Set
	s.Add(Interval{0, 5})
	s.Add(Interval{10, 15})
	s.Add(Interval{20, 25})
	s.Add(Interval{3, 22}) // bridges all three
	if s.Len() != 1 {
		t.Fatalf("bridging add should merge all, Len = %d", s.Len())
	}
	if s.Total() != 25 {
		t.Errorf("Total = %d, want 25", s.Total())
	}
}

func TestSetMissing(t *testing.T) {
	var s Set
	s.Add(Interval{10, 20})
	s.Add(Interval{30, 40})

	gaps := s.Missing(Interval{0, 50})
	want := []Interval{{0, 10}, {20, 30}, {40, 50}}
	if !reflect.DeepEqual(gaps, want) {
		t.Errorf("Missing = %v, want %v", gaps, want)
	}

	if got := s.Missing(Interval{12, 18}); len(got) != 0 {
		t.Errorf("Missing of covered range = %v, want none", got)
	}
	if got := s.Missing(Interval{22, 28}); !reflect.DeepEqual(got, []Interval{{22, 28}}) {
		t.Errorf("Missing of uncovered range = %v", got)
	}
	if got := s.Missing(Interval{5, 5}); got != nil {
		t.Errorf("Missing of empty range = %v, want nil", got)
	}
}

func TestSetContainsPoint(t *testing.T) {
	var s Set
	for i := int64(0); i < 100; i += 10 {
		s.Add(Interval{i, i + 5})
	}
	for i := int64(0); i < 100; i++ {
		want := i%10 < 5
		if got := s.Contains(i); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestSetClearAndClone(t *testing.T) {
	var s Set
	s.Add(Interval{1, 4})
	s.Add(Interval{8, 9})
	c := s.Clone()
	s.Clear()
	if s.Len() != 0 || s.Total() != 0 {
		t.Error("Clear should empty the set")
	}
	if c.Len() != 2 || !c.Covers(Interval{1, 4}) {
		t.Error("Clone should be unaffected by Clear")
	}
	c.Add(Interval{4, 8}) // mutate clone; original (cleared) unaffected
	if s.Len() != 0 {
		t.Error("mutating clone must not touch original")
	}
}

func TestSetString(t *testing.T) {
	var s Set
	s.Add(Interval{1, 2})
	s.Add(Interval{5, 7})
	if got, want := s.String(), "{[1,2) [5,7)}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// refSet is a brute-force reference implementation over a bool slice.
type refSet struct{ pts [256]bool }

func (r *refSet) add(iv Interval) {
	for i := max(iv.Lo, 0); i < min(iv.Hi, 256); i++ {
		r.pts[i] = true
	}
}

func (r *refSet) covers(iv Interval) bool {
	if iv.Empty() {
		return true
	}
	for i := iv.Lo; i < iv.Hi; i++ {
		if i < 0 || i >= 256 || !r.pts[i] {
			return false
		}
	}
	return true
}

// TestSetAgainstReference drives randomized operation sequences against a
// brute-force model and checks Covers, Contains, Missing and Total all
// agree.
func TestSetAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var s Set
		var ref refSet
		for op := 0; op < 40; op++ {
			lo := rng.Int63n(250)
			hi := min(lo+rng.Int63n(20), 256)
			s.Add(Interval{lo, hi})
			ref.add(Interval{lo, hi})
		}
		// Total must match the reference count.
		var want int64
		for _, b := range ref.pts {
			if b {
				want++
			}
		}
		if s.Total() != want {
			t.Fatalf("trial %d: Total = %d, want %d (%s)", trial, s.Total(), want, s.String())
		}
		// Random probes.
		for probe := 0; probe < 60; probe++ {
			lo := rng.Int63n(256)
			hi := lo + rng.Int63n(30)
			iv := Interval{lo, min(hi, 256)}
			if got, want := s.Covers(iv), ref.covers(iv); got != want {
				t.Fatalf("trial %d: Covers(%v) = %v, want %v in %s", trial, iv, got, want, s.String())
			}
			x := rng.Int63n(256)
			if got, want := s.Contains(x), ref.pts[x]; got != want {
				t.Fatalf("trial %d: Contains(%d) = %v, want %v", trial, x, got, want)
			}
			// Missing gaps, when re-added, must make the range covered.
			cp := s.Clone()
			for _, g := range cp.Missing(iv) {
				if ref.covers(g) && !g.Empty() {
					t.Fatalf("trial %d: Missing returned covered gap %v", trial, g)
				}
				cp.Add(g)
			}
			if !cp.Covers(iv) {
				t.Fatalf("trial %d: adding Missing(%v) gaps did not cover it", trial, iv)
			}
		}
	}
}

// TestSetBalance checks the AVL property holds under sequential insertion:
// height must stay logarithmic.
func TestSetBalance(t *testing.T) {
	var s Set
	for i := int64(0); i < 4096; i++ {
		s.Add(Interval{i * 2, i*2 + 1}) // never merge
	}
	if s.Len() != 4096 {
		t.Fatalf("Len = %d, want 4096", s.Len())
	}
	if h := s.Height(); h > 16 { // 1.44*log2(4096) ~ 17; AVL gives ~13
		t.Errorf("tree height %d too large for 4096 nodes", h)
	}
}

// quick-check: union of two sets covers exactly what either covers.
func TestQuickAddCommutes(t *testing.T) {
	f := func(ops []uint16) bool {
		var a, b Set
		ivs := make([]Interval, 0, len(ops))
		for _, o := range ops {
			lo := int64(o % 512)
			hi := lo + int64(o%31)
			ivs = append(ivs, Interval{lo, hi})
		}
		for _, iv := range ivs {
			a.Add(iv)
		}
		for i := len(ivs) - 1; i >= 0; i-- {
			b.Add(ivs[i])
		}
		if a.Total() != b.Total() || a.Len() != b.Len() {
			return false
		}
		return reflect.DeepEqual(a.All(), b.All())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// quick-check: Covers(iv) is equivalent to Missing(iv) being empty.
func TestQuickCoversIffNoMissing(t *testing.T) {
	f := func(ops []uint16, probeLo, probeSpan uint16) bool {
		var s Set
		for _, o := range ops {
			lo := int64(o % 512)
			s.Add(Interval{lo, lo + int64(o%17)})
		}
		iv := Interval{int64(probeLo % 600), int64(probeLo%600) + int64(probeSpan%64)}
		return s.Covers(iv) == (len(s.Missing(iv)) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSetAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		var s Set
		for j := 0; j < 1000; j++ {
			lo := rng.Int63n(1 << 20)
			s.Add(Interval{lo, lo + 64})
		}
	}
}

func BenchmarkSetCovers(b *testing.B) {
	var s Set
	rng := rand.New(rand.NewSource(1))
	for j := 0; j < 10000; j++ {
		lo := rng.Int63n(1 << 20)
		s.Add(Interval{lo, lo + 16})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(1 << 20)
		s.Covers(Interval{lo, lo + 8})
	}
}
