package sql

import (
	"strings"
	"testing"

	"nodb/internal/schema"
)

func parse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	s, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return s
}

func TestParseQ1(t *testing.T) {
	// The paper's Q1 template.
	s := parse(t, "select sum(a1),min(a4),max(a3),avg(a2) from R where a1>10 and a1<20 and a2>30 and a2<40")
	if len(s.Items) != 4 {
		t.Fatalf("items = %d", len(s.Items))
	}
	wantAggs := []AggKind{AggSum, AggMin, AggMax, AggAvg}
	wantCols := []string{"a1", "a4", "a3", "a2"}
	for i, it := range s.Items {
		if it.Agg != wantAggs[i] || it.Col.Column != wantCols[i] {
			t.Errorf("item %d = %v", i, it)
		}
	}
	if s.From.Name != "R" {
		t.Errorf("from = %v", s.From)
	}
	if len(s.Where) != 4 {
		t.Fatalf("where = %d", len(s.Where))
	}
	if s.Where[0].Col.Column != "a1" || s.Where[0].Op != ">" || s.Where[0].Val.I != 10 {
		t.Errorf("pred 0 = %v", s.Where[0])
	}
	if !s.HasAggregates() {
		t.Error("HasAggregates should be true")
	}
}

func TestParseQ2(t *testing.T) {
	s := parse(t, "select sum(a1),avg(a2) from R where a1>1 and a1<2 and a2>3 and a2<4")
	if len(s.Items) != 2 || len(s.Where) != 4 {
		t.Errorf("Q2 shape wrong: %v", s)
	}
}

func TestParsePlainColumns(t *testing.T) {
	s := parse(t, "select a1, a2 from t")
	if s.HasAggregates() {
		t.Error("no aggregates expected")
	}
	if len(s.Items) != 2 || s.Items[0].Col.Column != "a1" {
		t.Errorf("items = %v", s.Items)
	}
}

func TestParseStar(t *testing.T) {
	s := parse(t, "select * from t limit 5")
	if !s.Items[0].Star || s.Limit != 5 {
		t.Errorf("star/limit: %v", s)
	}
}

func TestParseCountStar(t *testing.T) {
	s := parse(t, "select count(*) from t")
	if s.Items[0].Agg != AggCount || !s.Items[0].Star {
		t.Errorf("count(*) = %v", s.Items[0])
	}
}

func TestParseCountColumn(t *testing.T) {
	s := parse(t, "select count(a1) from t")
	if s.Items[0].Agg != AggCount || s.Items[0].Col.Column != "a1" {
		t.Errorf("count(a1) = %v", s.Items[0])
	}
}

func TestParseSumStarRejected(t *testing.T) {
	if _, err := Parse("select sum(*) from t"); err == nil {
		t.Error("sum(*) should be rejected")
	}
}

func TestParseJoin(t *testing.T) {
	s := parse(t, "select sum(r.a1) from R r join S s on r.a1 = s.b1 where r.a2 > 5")
	if len(s.Joins) != 1 {
		t.Fatalf("joins = %d", len(s.Joins))
	}
	j := s.Joins[0]
	if j.Table.Name != "S" || j.Table.Alias != "s" {
		t.Errorf("join table = %v", j.Table)
	}
	if j.Left.Table != "r" || j.Left.Column != "a1" || j.Right.Table != "s" || j.Right.Column != "b1" {
		t.Errorf("join cond = %v = %v", j.Left, j.Right)
	}
	if s.From.Alias != "r" {
		t.Errorf("from alias = %q", s.From.Alias)
	}
}

func TestParseInnerJoin(t *testing.T) {
	s := parse(t, "select count(*) from a inner join b on a.x = b.y")
	if len(s.Joins) != 1 {
		t.Errorf("inner join not parsed")
	}
}

func TestParseBetween(t *testing.T) {
	s := parse(t, "select a1 from t where a1 between 5 and 10")
	p := s.Where[0]
	if !p.Between || p.Lo.I != 5 || p.Hi.I != 10 {
		t.Errorf("between = %v", p)
	}
}

func TestParseFlippedPredicate(t *testing.T) {
	s := parse(t, "select a1 from t where 10 < a1")
	p := s.Where[0]
	if p.Col.Column != "a1" || p.Op != ">" || p.Val.I != 10 {
		t.Errorf("flipped pred = %v", p)
	}
}

func TestParseGroupOrder(t *testing.T) {
	s := parse(t, "select a1, count(*) from t group by a1 order by a1 desc limit 3")
	if len(s.GroupBy) != 1 || s.GroupBy[0].Column != "a1" {
		t.Errorf("group by = %v", s.GroupBy)
	}
	if len(s.OrderBy) != 1 || !s.OrderBy[0].Desc {
		t.Errorf("order by = %v", s.OrderBy)
	}
	if s.Limit != 3 {
		t.Errorf("limit = %d", s.Limit)
	}
}

func TestParseStringLiteral(t *testing.T) {
	s := parse(t, "select a from t where name = 'o''brien'")
	if s.Where[0].Val.Typ != schema.String || s.Where[0].Val.S != "o'brien" {
		t.Errorf("string literal = %v", s.Where[0].Val)
	}
}

func TestParseFloatLiteral(t *testing.T) {
	s := parse(t, "select a from t where x > 2.5")
	if s.Where[0].Val.Typ != schema.Float64 || s.Where[0].Val.F != 2.5 {
		t.Errorf("float literal = %v", s.Where[0].Val)
	}
}

func TestParseNegativeLiteral(t *testing.T) {
	s := parse(t, "select a from t where x > -5")
	if s.Where[0].Val.I != -5 {
		t.Errorf("negative literal = %v", s.Where[0].Val)
	}
}

func TestParseNeOps(t *testing.T) {
	for _, q := range []string{"select a from t where x <> 3", "select a from t where x != 3"} {
		s := parse(t, q)
		if s.Where[0].Op != "<>" {
			t.Errorf("%q: op = %q", q, s.Where[0].Op)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	s := parse(t, "SELECT SUM(a1) FROM r WHERE a1 > 1 AND a2 < 2")
	if len(s.Items) != 1 || s.Items[0].Agg != AggSum || len(s.Where) != 2 {
		t.Errorf("uppercase parse: %v", s)
	}
}

func TestParseAliasWithAs(t *testing.T) {
	s := parse(t, "select x from mytable as m where m.x > 1")
	if s.From.Alias != "m" {
		t.Errorf("alias = %q", s.From.Alias)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"selec a from t",
		"select from t",
		"select a",
		"select a from",
		"select a from t where",
		"select a from t where a >",
		"select a from t where a > 1 or b < 2",
		"select a from t where a between 1",
		"select a from t join s",
		"select a from t join s on a.x",
		"select a from t join s on a.x > s.y",
		"select a from t limit x",
		"select a from t where a ~ 1",
		"select a from t where name = 'unterminated",
		"select a from t 1234",
		"select sum(a from t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseAggregateNameAsColumn(t *testing.T) {
	// "count" not followed by '(' is a plain column name.
	s := parse(t, "select count from t")
	if s.Items[0].Agg != AggNone || s.Items[0].Col.Column != "count" {
		t.Errorf("count-as-column = %v", s.Items[0])
	}
}

func TestStmtStringRoundTrip(t *testing.T) {
	queries := []string{
		"select sum(a1), avg(a2) from R where a1 > 1 and a1 < 2",
		"select * from t limit 5",
		"select a, count(*) from t group by a order by a desc",
		"select sum(r.a1) from R r join S s on r.a1 = s.b1",
		"select a from t where a between 1 and 2",
	}
	for _, q := range queries {
		s1 := parse(t, q)
		s2 := parse(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("round trip changed:\n  %s\n  %s", s1, s2)
		}
	}
}

func TestSemicolonTolerated(t *testing.T) {
	s := parse(t, "select a from t;")
	if s.From.Name != "t" {
		t.Error("trailing semicolon should be tolerated")
	}
}

func TestLexerPositionsInErrors(t *testing.T) {
	_, err := Parse("select a from t where a @ 1")
	if err == nil || !strings.Contains(err.Error(), "position") {
		t.Errorf("error should cite a position: %v", err)
	}
}
