package sql

import (
	"fmt"
	"strconv"
	"strings"

	"nodb/internal/storage"
)

// Parse parses one SELECT statement.
func Parse(query string) (*SelectStmt, error) {
	p := &parser{lex: lexer{src: query}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s after statement", p.tok)
	}
	stmt.NumParams = p.params
	return stmt, nil
}

type parser struct {
	lex    lexer
	tok    token
	params int // `?` placeholders seen so far
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// keywordIs reports whether the current token is the given keyword
// (case-insensitive).
func (p *parser) keywordIs(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.keywordIs(kw) {
		return p.errf("expected %s, got %s", strings.ToUpper(kw), p.tok)
	}
	return p.advance()
}

var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"join": true, "inner": true, "on": true, "group": true, "order": true,
	"by": true, "limit": true, "as": true, "between": true, "asc": true,
	"desc": true, "not": true,
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}

	// Select list.
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	from, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from

	// Joins.
	for p.keywordIs("join") || p.keywordIs("inner") {
		if p.keywordIs("inner") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("join"); err != nil {
			return nil, err
		}
		tref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		left, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokOp || p.tok.text != "=" {
			return nil, p.errf("expected = in join condition, got %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.colRef()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, Join{Table: tref, Left: left, Right: right})
	}

	// WHERE conjunction.
	if p.keywordIs("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			pred, err := p.predicate()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, pred)
			if !p.keywordIs("and") {
				if p.keywordIs("or") {
					return nil, p.errf("OR is not supported; only conjunctive WHERE clauses")
				}
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}

	// GROUP BY.
	if p.keywordIs("group") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, c)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}

	// ORDER BY.
	if p.keywordIs("order") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.keywordIs("desc") {
				item.Desc = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.keywordIs("asc") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}

	// LIMIT.
	if p.keywordIs("limit") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber {
			return nil, p.errf("expected number after LIMIT, got %s", p.tok)
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", p.tok.text)
		}
		stmt.Limit = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}

	return stmt, nil
}

var aggNames = map[string]AggKind{
	"sum": AggSum, "min": AggMin, "max": AggMax, "avg": AggAvg, "count": AggCount,
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.tok.kind == tokStar {
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Star: true}, nil
	}
	if p.tok.kind != tokIdent {
		return SelectItem{}, p.errf("expected column or aggregate, got %s", p.tok)
	}
	name := strings.ToLower(p.tok.text)
	if agg, ok := aggNames[name]; ok {
		// Peek: aggregate only when followed by '('.
		save := p.lex.pos
		saveTok := p.tok
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
		if p.tok.kind == tokLParen {
			if err := p.advance(); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: agg}
			if p.tok.kind == tokStar {
				if agg != AggCount {
					return SelectItem{}, p.errf("%s(*) is only valid for count", agg)
				}
				item.Star = true
				if err := p.advance(); err != nil {
					return SelectItem{}, err
				}
			} else {
				col, err := p.colRef()
				if err != nil {
					return SelectItem{}, err
				}
				item.Col = col
			}
			if p.tok.kind != tokRParen {
				return SelectItem{}, p.errf("expected ), got %s", p.tok)
			}
			if err := p.advance(); err != nil {
				return SelectItem{}, err
			}
			return item, nil
		}
		// Not an aggregate call after all: rewind and treat as column.
		p.lex.pos = save
		p.tok = saveTok
	}
	col, err := p.colRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

func (p *parser) tableRef() (TableRef, error) {
	if p.tok.kind != tokIdent || reservedWords[strings.ToLower(p.tok.text)] {
		return TableRef{}, p.errf("expected table name, got %s", p.tok)
	}
	ref := TableRef{Name: p.tok.text}
	if err := p.advance(); err != nil {
		return TableRef{}, err
	}
	if p.keywordIs("as") {
		if err := p.advance(); err != nil {
			return TableRef{}, err
		}
		if p.tok.kind != tokIdent {
			return TableRef{}, p.errf("expected alias after AS, got %s", p.tok)
		}
		ref.Alias = p.tok.text
		return ref, p.advance()
	}
	if p.tok.kind == tokIdent && !reservedWords[strings.ToLower(p.tok.text)] {
		ref.Alias = p.tok.text
		return ref, p.advance()
	}
	return ref, nil
}

func (p *parser) colRef() (ColRef, error) {
	if p.tok.kind != tokIdent || reservedWords[strings.ToLower(p.tok.text)] {
		return ColRef{}, p.errf("expected column name, got %s", p.tok)
	}
	first := p.tok.text
	if err := p.advance(); err != nil {
		return ColRef{}, err
	}
	if p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return ColRef{}, err
		}
		if p.tok.kind != tokIdent {
			return ColRef{}, p.errf("expected column after '.', got %s", p.tok)
		}
		col := ColRef{Table: first, Column: p.tok.text}
		return col, p.advance()
	}
	return ColRef{Column: first}, nil
}

// literal parses a literal or a `?` placeholder. The returned param is the
// placeholder's 1-based ordinal, or 0 when a real literal was parsed.
func (p *parser) literal() (storage.Value, int, error) {
	switch p.tok.kind {
	case tokQMark:
		p.params++
		return storage.Value{}, p.params, p.advance()
	case tokNumber:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return storage.Value{}, 0, err
		}
		if strings.ContainsRune(text, '.') {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return storage.Value{}, 0, p.errf("invalid number %q", text)
			}
			return storage.FloatValue(f), 0, nil
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return storage.Value{}, 0, p.errf("invalid integer %q", text)
		}
		return storage.IntValue(i), 0, nil
	case tokString:
		v := storage.StringValue(p.tok.text)
		return v, 0, p.advance()
	default:
		return storage.Value{}, 0, p.errf("expected literal, got %s", p.tok)
	}
}

var flipOp = map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}

func (p *parser) predicate() (Predicate, error) {
	// literal op col form: flip into col op literal.
	if p.tok.kind == tokNumber || p.tok.kind == tokString || p.tok.kind == tokQMark {
		val, param, err := p.literal()
		if err != nil {
			return Predicate{}, err
		}
		if p.tok.kind != tokOp {
			return Predicate{}, p.errf("expected comparison operator, got %s", p.tok)
		}
		op := p.tok.text
		if err := p.advance(); err != nil {
			return Predicate{}, err
		}
		col, err := p.colRef()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Col: col, Op: flipOp[op], Val: val, ValParam: param}, nil
	}

	col, err := p.colRef()
	if err != nil {
		return Predicate{}, err
	}
	if p.keywordIs("between") {
		if err := p.advance(); err != nil {
			return Predicate{}, err
		}
		lo, loParam, err := p.literal()
		if err != nil {
			return Predicate{}, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return Predicate{}, err
		}
		hi, hiParam, err := p.literal()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Col: col, Between: true, Lo: lo, Hi: hi, LoParam: loParam, HiParam: hiParam}, nil
	}
	if p.tok.kind != tokOp {
		return Predicate{}, p.errf("expected comparison operator, got %s", p.tok)
	}
	op := p.tok.text
	if err := p.advance(); err != nil {
		return Predicate{}, err
	}
	val, param, err := p.literal()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Col: col, Op: op, Val: val, ValParam: param}, nil
}
