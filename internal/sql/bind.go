package sql

import (
	"fmt"
	"strings"

	"nodb/internal/storage"
)

// BindValue converts a Go value to a typed engine value. Integers (signed
// and unsigned), floats, strings, bools and []byte are accepted; binding is
// by value, never by SQL-text substitution, so arguments cannot alter the
// statement's structure (injection-safe by construction).
func BindValue(arg any) (storage.Value, error) {
	switch v := arg.(type) {
	case int64:
		return storage.IntValue(v), nil
	case int:
		return storage.IntValue(int64(v)), nil
	case int32:
		return storage.IntValue(int64(v)), nil
	case int16:
		return storage.IntValue(int64(v)), nil
	case int8:
		return storage.IntValue(int64(v)), nil
	case uint64:
		if v > 1<<63-1 {
			return storage.Value{}, fmt.Errorf("sql: uint64 argument %d overflows int64", v)
		}
		return storage.IntValue(int64(v)), nil
	case uint:
		return BindValue(uint64(v))
	case uint32:
		return storage.IntValue(int64(v)), nil
	case uint16:
		return storage.IntValue(int64(v)), nil
	case uint8:
		return storage.IntValue(int64(v)), nil
	case float64:
		return storage.FloatValue(v), nil
	case float32:
		return storage.FloatValue(float64(v)), nil
	case string:
		return storage.StringValue(v), nil
	case []byte:
		return storage.StringValue(string(v)), nil
	case bool:
		if v {
			return storage.IntValue(1), nil
		}
		return storage.IntValue(0), nil
	case storage.Value:
		return v, nil
	default:
		return storage.Value{}, fmt.Errorf("sql: unsupported argument type %T", arg)
	}
}

// Bind substitutes the statement's `?` placeholders with the given
// arguments (in order) and returns the bound statement. The receiver is
// not modified: prepared-statement templates are shared across goroutines,
// so binding deep-copies the WHERE clause it rewrites. A statement without
// placeholders binds to itself when no arguments are given.
func (s *SelectStmt) Bind(args ...any) (*SelectStmt, error) {
	if len(args) != s.NumParams {
		return nil, fmt.Errorf("sql: statement has %d parameters, got %d arguments", s.NumParams, len(args))
	}
	if s.NumParams == 0 {
		return s, nil
	}
	vals := make([]storage.Value, len(args))
	for i, a := range args {
		v, err := BindValue(a)
		if err != nil {
			return nil, fmt.Errorf("sql: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	out := *s
	out.Where = make([]Predicate, len(s.Where))
	for i, pred := range s.Where {
		if pred.ValParam > 0 {
			pred.Val = vals[pred.ValParam-1]
			pred.ValParam = 0
		}
		if pred.LoParam > 0 {
			pred.Lo = vals[pred.LoParam-1]
			pred.LoParam = 0
		}
		if pred.HiParam > 0 {
			pred.Hi = vals[pred.HiParam-1]
			pred.HiParam = 0
		}
		out.Where[i] = pred
	}
	out.NumParams = 0
	return &out, nil
}

// Normalize canonicalizes a query string for use as a cache key: ASCII
// letters outside single-quoted string literals are lowercased, runs of
// whitespace collapse to one space, and leading/trailing space (including
// trailing semicolons) is trimmed. Two spellings of the same statement
// normalize to the same key; string literals are preserved byte-for-byte.
func Normalize(query string) string {
	var sb strings.Builder
	sb.Grow(len(query))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(query); i++ {
		c := query[i]
		if inStr {
			sb.WriteByte(c)
			if c == '\'' {
				inStr = false
			}
			continue
		}
		if isSpace(c) {
			pendingSpace = sb.Len() > 0
			continue
		}
		if pendingSpace {
			sb.WriteByte(' ')
			pendingSpace = false
		}
		switch {
		case c == '\'':
			inStr = true
			sb.WriteByte(c)
		case c >= 'A' && c <= 'Z':
			sb.WriteByte(c + ('a' - 'A'))
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}
