// Package sql implements the declarative query interface: a lexer,
// abstract syntax tree and recursive-descent parser for the SQL subset the
// engine supports (see DESIGN.md §6). The paper's position is that the
// declarative interface itself is a major benefit over scripting tools
// (§2.2 "Declarative SQL Interface"); this package is that interface.
package sql

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokStar
	tokOp    // < <= > >= = <> !=
	tokQMark // ? placeholder
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer splits a query string into tokens.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", pos, fmt.Sprintf(format, args...))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '?':
		l.pos++
		return token{tokQMark, "?", start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
			return token{tokOp, l.src[start:l.pos], start}, nil
		}
		return token{tokOp, "<", start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, ">=", start}, nil
		}
		return token{tokOp, ">", start}, nil
	case c == '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, "<>", start}, nil
		}
		return token{}, l.errf(start, "unexpected '!'")
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped quote
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{tokString, sb.String(), start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{}, l.errf(start, "unterminated string literal")
	case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		l.pos++
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
