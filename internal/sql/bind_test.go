package sql

import (
	"strings"
	"testing"

	"nodb/internal/schema"
	"nodb/internal/storage"
)

func TestParsePlaceholders(t *testing.T) {
	stmt, err := Parse("select a1 from t where a1 > ? and a2 between ? and ? and a3 = 'lit'")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams != 3 {
		t.Fatalf("NumParams = %d, want 3", stmt.NumParams)
	}
	if stmt.Where[0].ValParam != 1 {
		t.Fatalf("first placeholder ordinal = %d, want 1", stmt.Where[0].ValParam)
	}
	if stmt.Where[1].LoParam != 2 || stmt.Where[1].HiParam != 3 {
		t.Fatalf("between ordinals = %d,%d, want 2,3", stmt.Where[1].LoParam, stmt.Where[1].HiParam)
	}
	if stmt.Where[2].ValParam != 0 || stmt.Where[2].Val.S != "lit" {
		t.Fatalf("literal predicate parsed as %+v", stmt.Where[2])
	}
	if got := stmt.String(); !strings.Contains(got, "a1 > ?") || !strings.Contains(got, "BETWEEN ? AND ?") {
		t.Fatalf("String() = %q; placeholders not rendered", got)
	}
}

func TestParsePlaceholderFlipped(t *testing.T) {
	stmt, err := Parse("select a1 from t where ? < a1")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams != 1 || stmt.Where[0].Op != ">" || stmt.Where[0].ValParam != 1 {
		t.Fatalf("flipped placeholder parsed as %+v", stmt.Where[0])
	}
}

func TestBind(t *testing.T) {
	stmt, err := Parse("select a1 from t where a1 > ? and a2 between ? and ?")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := stmt.Bind(int64(5), 10, 20.5)
	if err != nil {
		t.Fatal(err)
	}
	if bound.NumParams != 0 {
		t.Fatalf("bound NumParams = %d", bound.NumParams)
	}
	if v := bound.Where[0].Val; v.Typ != schema.Int64 || v.I != 5 {
		t.Fatalf("bound[0] = %+v", v)
	}
	if v := bound.Where[1].Lo; v.Typ != schema.Int64 || v.I != 10 {
		t.Fatalf("bound lo = %+v", v)
	}
	if v := bound.Where[1].Hi; v.Typ != schema.Float64 || v.F != 20.5 {
		t.Fatalf("bound hi = %+v", v)
	}
	// The template is untouched (it is shared across goroutines).
	if stmt.NumParams != 3 || stmt.Where[0].ValParam != 1 || stmt.Where[0].Val.Typ != schema.Int64 || stmt.Where[0].Val.I != 0 {
		t.Fatalf("Bind mutated the template: %+v", stmt.Where[0])
	}

	if _, err := stmt.Bind(1, 2); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := stmt.Bind(1, 2, struct{}{}); err == nil {
		t.Fatal("unsupported type accepted")
	}
}

func TestBindValueKinds(t *testing.T) {
	cases := []struct {
		in   any
		want storage.Value
	}{
		{int8(7), storage.IntValue(7)},
		{uint16(9), storage.IntValue(9)},
		{uint64(12), storage.IntValue(12)},
		{float32(1.5), storage.FloatValue(1.5)},
		{"s", storage.StringValue("s")},
		{[]byte("b"), storage.StringValue("b")},
		{true, storage.IntValue(1)},
		{false, storage.IntValue(0)},
	}
	for _, c := range cases {
		got, err := BindValue(c.in)
		if err != nil {
			t.Fatalf("BindValue(%v): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("BindValue(%v) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if _, err := BindValue(uint64(1) << 63); err == nil {
		t.Fatal("uint64 overflow accepted")
	}
}

func TestNormalize(t *testing.T) {
	a := Normalize("SELECT  a1\tFROM t\n WHERE a1 < ? ;")
	b := Normalize("select a1 from t where a1 < ?")
	if a != b {
		t.Fatalf("normalize mismatch: %q vs %q", a, b)
	}
	// String literals keep their case and spacing.
	c := Normalize("select a1 from t where a2 = 'Mixed  Case'")
	if !strings.Contains(c, "'Mixed  Case'") {
		t.Fatalf("normalize damaged the string literal: %q", c)
	}
	if Normalize("select a1 from t where a2 = 'x'") == Normalize("select a1 from t where a2 = 'X'") {
		t.Fatal("normalize conflated distinct string literals")
	}
}
