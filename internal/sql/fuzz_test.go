package sql

import (
	"strings"
	"testing"
)

// Seed corpus: the statement shapes the grammar supports, plus inputs
// that historically trip hand-written lexers (unterminated strings, bare
// operators, deep nesting of keywords, placeholder soup).
var parseSeeds = []string{
	"select a1 from t",
	"select sum(a1), avg(a2) from t where a1 > 10 and a1 < 1000",
	"select count(*) from events",
	"select a1, a2 from t where a1 between 1 and 5 order by a2 desc limit 10",
	"select t.a1, u.a2 from t join u on t.a1 = u.a1 where u.a2 >= 3",
	"select a1, sum(a2) from t group by a1 order by a1 limit 3",
	"select a1 from t where a1 = 'quoted string'",
	"select a1 from t where a1 > ? and a1 < ?",
	"select a1 from t where a1 between ? and ? limit 5",
	"SELECT A1 FROM T WHERE A1 > -1.5e3",
	"select min(a1), max(a1) from t where s = 'it''s'",
	"select",
	"select from where",
	"select a1 from t where a1 >",
	"select a1 from t where 'unterminated",
	"select a1 from t limit -1",
	"select a1 from t where a1 ! 3",
	"select * from t",
	"select a1 from t join",
	"select ?(a1) from t",
	"\x00\xff select",
	"select a1 from t where a1 between 1 and",
}

// FuzzParse: the parser must never panic, and an accepted statement must
// render (String) to something the parser accepts again — the rendered
// form is what EXPLAIN and the plan cache key off.
func FuzzParse(f *testing.F) {
	for _, s := range parseSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, query string) {
		stmt, err := Parse(query)
		if err != nil {
			return // rejected input is fine; panics are the bug
		}
		rendered := stmt.String()
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", query, rendered, err)
		}
		// Normalize must be idempotent: the plan cache uses it as a key.
		n1 := Normalize(query)
		if n2 := Normalize(n1); n1 != n2 {
			t.Fatalf("Normalize not idempotent: %q -> %q -> %q", query, n1, n2)
		}
	})
}

// FuzzBind: binding arbitrary argument values into a parsed statement
// must never panic, must enforce the parameter count, and must leave the
// shared template untouched (prepared statements are shared across
// goroutines).
func FuzzBind(f *testing.F) {
	for _, s := range parseSeeds {
		f.Add(s, int64(42), "x", 1.5)
	}
	f.Add("select a1 from t where a1 > ? and a2 < ? and a3 between ? and ?", int64(-1), "", -0.0)
	f.Fuzz(func(t *testing.T, query string, i int64, s string, fl float64) {
		stmt, err := Parse(query)
		if err != nil {
			return
		}
		args := []any{i, s, fl, true}[:min(stmt.NumParams, 4)]
		before := stmt.String()
		bound, err := stmt.Bind(args...)
		if len(args) != stmt.NumParams {
			if err == nil {
				t.Fatalf("Bind accepted %d args for %d params", len(args), stmt.NumParams)
			}
			return
		}
		if err != nil {
			return // unbindable value; fine
		}
		if bound.NumParams != 0 {
			t.Fatalf("bound statement still has %d params", bound.NumParams)
		}
		if after := stmt.String(); after != before {
			t.Fatalf("Bind mutated the shared template: %q -> %q", before, after)
		}
		// A fully bound statement renders without placeholders.
		if stmt.NumParams > 0 && strings.Contains(bound.String(), "?") &&
			!strings.Contains(before, "'") {
			t.Fatalf("bound statement still renders a placeholder: %q", bound.String())
		}
	})
}
