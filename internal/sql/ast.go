package sql

import (
	"fmt"
	"strings"

	"nodb/internal/schema"
	"nodb/internal/storage"
)

// AggKind identifies an aggregate function in a select list.
type AggKind int

// Aggregate kinds; AggNone marks a plain column reference.
const (
	AggNone AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
	AggCount
)

func (a AggKind) String() string {
	switch a {
	case AggNone:
		return ""
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	case AggCount:
		return "count"
	default:
		return fmt.Sprintf("AggKind(%d)", int(a))
	}
}

// ColRef names a column, optionally qualified by a table name or alias.
type ColRef struct {
	Table  string
	Column string
}

func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// SelectItem is one entry of a select list: an aggregate over a column,
// count(*), a plain column, or * (all columns).
type SelectItem struct {
	Agg  AggKind
	Col  ColRef
	Star bool // count(*) when Agg == AggCount, or a bare *
}

func (it SelectItem) String() string {
	switch {
	case it.Agg != AggNone && it.Star:
		return it.Agg.String() + "(*)"
	case it.Agg != AggNone:
		return fmt.Sprintf("%s(%s)", it.Agg, it.Col)
	case it.Star:
		return "*"
	default:
		return it.Col.String()
	}
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// RefName returns the name queries use to qualify columns of this table.
func (t TableRef) RefName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// Join is an inner equi-join clause.
type Join struct {
	Table TableRef
	Left  ColRef // column of the FROM table
	Right ColRef // column of the joined table
}

// Predicate is a WHERE conjunct: Col <Op> Value, or Col BETWEEN Lo AND Hi.
// Any of the literals may instead be a `?` placeholder, marked by a
// positive 1-based parameter ordinal in the matching *Param field; the
// corresponding Value is unset until Bind substitutes the argument.
type Predicate struct {
	Col     ColRef
	Op      string // "<", "<=", ">", ">=", "=", "<>"
	Val     storage.Value
	Lo, Hi  storage.Value
	Between bool
	// Placeholder ordinals (1-based; 0 = the literal is real).
	ValParam, LoParam, HiParam int
}

func lit(v storage.Value, param int) string {
	if param > 0 {
		return "?"
	}
	if v.Typ == schema.String {
		// Quote (and escape) so the rendered statement re-parses; found by
		// FuzzParse's render-reparse property.
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return v.String()
}

func (p Predicate) String() string {
	if p.Between {
		return fmt.Sprintf("%s BETWEEN %s AND %s", p.Col, lit(p.Lo, p.LoParam), lit(p.Hi, p.HiParam))
	}
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, lit(p.Val, p.ValParam))
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Col  ColRef
	Desc bool
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Items   []SelectItem
	From    TableRef
	Joins   []Join
	Where   []Predicate // conjunction
	GroupBy []ColRef
	OrderBy []OrderItem
	Limit   int // -1 when absent
	// NumParams counts the `?` placeholders in the statement. A statement
	// with placeholders must be Bind-ed before planning.
	NumParams int
}

// HasAggregates reports whether any select item is an aggregate.
func (s *SelectStmt) HasAggregates() bool {
	for _, it := range s.Items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}

func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	sb.WriteString(" FROM ")
	sb.WriteString(s.From.Name)
	if s.From.Alias != "" {
		sb.WriteString(" " + s.From.Alias)
	}
	for _, j := range s.Joins {
		fmt.Fprintf(&sb, " JOIN %s", j.Table.Name)
		if j.Table.Alias != "" {
			sb.WriteString(" " + j.Table.Alias)
		}
		fmt.Fprintf(&sb, " ON %s = %s", j.Left, j.Right)
	}
	if len(s.Where) > 0 {
		sb.WriteString(" WHERE ")
		for i, p := range s.Where {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(p.String())
		}
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.String())
		}
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Col.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String()
}
