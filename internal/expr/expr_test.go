package expr

import (
	"math"
	"testing"
	"testing/quick"

	"nodb/internal/storage"
)

func TestPredEval(t *testing.T) {
	cases := []struct {
		p    Pred
		v    storage.Value
		want bool
	}{
		{Pred{Op: Lt, Val: storage.IntValue(10)}, storage.IntValue(5), true},
		{Pred{Op: Lt, Val: storage.IntValue(10)}, storage.IntValue(10), false},
		{Pred{Op: Le, Val: storage.IntValue(10)}, storage.IntValue(10), true},
		{Pred{Op: Gt, Val: storage.IntValue(10)}, storage.IntValue(11), true},
		{Pred{Op: Ge, Val: storage.IntValue(10)}, storage.IntValue(10), true},
		{Pred{Op: Eq, Val: storage.IntValue(10)}, storage.IntValue(10), true},
		{Pred{Op: Eq, Val: storage.IntValue(10)}, storage.IntValue(9), false},
		{Pred{Op: Ne, Val: storage.IntValue(10)}, storage.IntValue(9), true},
		{Pred{Between: true, Val: storage.IntValue(5), Val2: storage.IntValue(8)}, storage.IntValue(5), true},
		{Pred{Between: true, Val: storage.IntValue(5), Val2: storage.IntValue(8)}, storage.IntValue(8), true},
		{Pred{Between: true, Val: storage.IntValue(5), Val2: storage.IntValue(8)}, storage.IntValue(9), false},
		{Pred{Op: Lt, Val: storage.FloatValue(2.5)}, storage.IntValue(2), true},
		{Pred{Op: Gt, Val: storage.StringValue("abc")}, storage.StringValue("abd"), true},
	}
	for _, c := range cases {
		if got := c.p.Eval(c.v); got != c.want {
			t.Errorf("(%s).Eval(%v) = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

func TestEvalIntMatchesEval(t *testing.T) {
	f := func(v, bound int64, op uint8, b2 int64) bool {
		p := Pred{Op: CmpOp(op % 6), Val: storage.IntValue(bound)}
		if op%7 == 0 {
			lo, hi := bound, b2
			if lo > hi {
				lo, hi = hi, lo
			}
			p = Pred{Between: true, Val: storage.IntValue(lo), Val2: storage.IntValue(hi)}
		}
		return p.EvalInt(v) == p.Eval(storage.IntValue(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestConjunctionEvalRow(t *testing.T) {
	c := Conjunction{Preds: []Pred{
		{Col: 0, Op: Gt, Val: storage.IntValue(10)},
		{Col: 0, Op: Lt, Val: storage.IntValue(20)},
		{Col: 1, Op: Eq, Val: storage.IntValue(5)},
	}}
	row := map[int]int64{0: 15, 1: 5}
	get := func(col int) storage.Value { return storage.IntValue(row[col]) }
	if !c.EvalRow(get) {
		t.Error("row should satisfy conjunction")
	}
	row[0] = 25
	if c.EvalRow(get) {
		t.Error("row should fail upper bound")
	}
}

func TestConjunctionColumns(t *testing.T) {
	c := Conjunction{Preds: []Pred{{Col: 3}, {Col: 1}, {Col: 3}, {Col: 0}}}
	got := c.Columns()
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("Columns = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Columns = %v, want %v", got, want)
		}
	}
	if len(c.OnColumn(3)) != 2 || len(c.OnColumn(9)) != 0 {
		t.Error("OnColumn broken")
	}
}

func TestIntRange(t *testing.T) {
	iv := func(lo, hi int64) [2]int64 { return [2]int64{lo, hi} }
	cases := []struct {
		preds []Pred
		want  [2]int64
		exact bool
	}{
		{[]Pred{{Col: 0, Op: Gt, Val: storage.IntValue(10)}, {Col: 0, Op: Lt, Val: storage.IntValue(20)}}, iv(11, 20), true},
		{[]Pred{{Col: 0, Op: Ge, Val: storage.IntValue(10)}, {Col: 0, Op: Le, Val: storage.IntValue(20)}}, iv(10, 21), true},
		{[]Pred{{Col: 0, Op: Eq, Val: storage.IntValue(7)}}, iv(7, 8), true},
		{[]Pred{{Col: 0, Between: true, Val: storage.IntValue(3), Val2: storage.IntValue(6)}}, iv(3, 7), true},
		{[]Pred{{Col: 0, Op: Ne, Val: storage.IntValue(7)}}, iv(math.MinInt64, math.MaxInt64), false},
		{[]Pred{}, iv(math.MinInt64, math.MaxInt64), true},
		// Contradiction → empty interval.
		{[]Pred{{Col: 0, Op: Gt, Val: storage.IntValue(20)}, {Col: 0, Op: Lt, Val: storage.IntValue(10)}}, iv(21, 21), true},
	}
	for i, c := range cases {
		conj := Conjunction{Preds: c.preds}
		got, exact := conj.IntRange(0)
		if got.Lo != c.want[0] || got.Hi != c.want[1] || exact != c.exact {
			t.Errorf("case %d: IntRange = %v exact=%v, want [%d,%d) exact=%v",
				i, got, exact, c.want[0], c.want[1], c.exact)
		}
	}
}

func TestIntRangeIgnoresOtherColumns(t *testing.T) {
	c := Conjunction{Preds: []Pred{
		{Col: 0, Op: Gt, Val: storage.IntValue(5)},
		{Col: 1, Op: Lt, Val: storage.IntValue(3)},
	}}
	got, exact := c.IntRange(0)
	if got.Lo != 6 || got.Hi != math.MaxInt64 || !exact {
		t.Errorf("IntRange(0) = %v exact=%v", got, exact)
	}
}

// Property: for int values, membership in IntRange(col) equals satisfying
// all predicates on col (when exact).
func TestQuickIntRangeSound(t *testing.T) {
	f := func(v int64, b1, b2 int64, ops [2]uint8) bool {
		preds := []Pred{
			{Col: 0, Op: CmpOp(ops[0] % 5), Val: storage.IntValue(b1 % 1000)}, // skip Ne
			{Col: 0, Op: CmpOp(ops[1] % 5), Val: storage.IntValue(b2 % 1000)},
		}
		c := Conjunction{Preds: preds}
		r, exact := c.IntRange(0)
		if !exact {
			return true
		}
		vv := v % 2000
		want := preds[0].EvalInt(vv) && preds[1].EvalInt(vv)
		return r.Contains(vv) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestSatAdd1(t *testing.T) {
	if satAdd1(math.MaxInt64) != math.MaxInt64 {
		t.Error("satAdd1 should saturate")
	}
	if satAdd1(5) != 6 {
		t.Error("satAdd1(5) != 6")
	}
}

func TestStrings(t *testing.T) {
	p := Pred{Col: 2, Op: Le, Val: storage.IntValue(9)}
	if p.String() != "col2 <= 9" {
		t.Errorf("Pred.String = %q", p.String())
	}
	b := Pred{Col: 1, Between: true, Val: storage.IntValue(1), Val2: storage.IntValue(2)}
	if b.String() != "col1 BETWEEN 1 AND 2" {
		t.Errorf("between String = %q", b.String())
	}
	c := Conjunction{Preds: []Pred{p, b}}
	if c.String() != "col2 <= 9 AND col1 BETWEEN 1 AND 2" {
		t.Errorf("Conjunction.String = %q", c.String())
	}
	for op, s := range map[CmpOp]string{Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Eq: "=", Ne: "<>"} {
		if op.String() != s {
			t.Errorf("op %d String = %q, want %q", op, op.String(), s)
		}
	}
}

func TestIntRangeNonIntLiteralInexact(t *testing.T) {
	c := Conjunction{Preds: []Pred{{Col: 0, Op: Gt, Val: storage.FloatValue(2.5)}}}
	r, exact := c.IntRange(0)
	if exact {
		t.Error("float literal should make the range inexact")
	}
	if r.Lo != math.MinInt64 || r.Hi != math.MaxInt64 {
		t.Errorf("inexact range should stay full: %v", r)
	}
}
