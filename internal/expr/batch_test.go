package expr

import (
	"math/rand"
	"testing"

	"nodb/internal/schema"
	"nodb/internal/storage"
)

// TestFilterColumnMatchesEval differentially pins the vectorized loops to
// the boxed per-row Eval across every operator, column type and literal
// type combination (including mixed-type literals that take the fallback).
func TestFilterColumnMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 257

	ints := storage.NewDense(schema.Int64, n)
	floats := storage.NewDense(schema.Float64, n)
	strs := storage.NewDense(schema.String, n)
	alpha := []string{"a", "ab", "b", "ba", "c", "z", ""}
	for i := 0; i < n; i++ {
		ints.Append(storage.IntValue(rng.Int63n(21) - 10))
		floats.Append(storage.FloatValue(float64(rng.Int63n(41)-20) / 4))
		strs.Append(storage.StringValue(alpha[rng.Intn(len(alpha))]))
	}

	lits := []storage.Value{
		storage.IntValue(0), storage.IntValue(-3), storage.IntValue(10),
		storage.FloatValue(1.25), storage.FloatValue(-0.5),
		storage.StringValue("b"), storage.StringValue(""),
	}
	cols := []*storage.DenseColumn{ints, floats, strs}
	ops := []CmpOp{Lt, Le, Gt, Ge, Eq, Ne}

	check := func(p Pred, col *storage.DenseColumn) {
		t.Helper()
		sel := make([]int32, n)
		for i := range sel {
			sel[i] = int32(i)
		}
		got := p.FilterColumn(col, sel)
		var want []int32
		for i := 0; i < n; i++ {
			if p.Eval(col.Value(i)) {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%v over %v column: %d survivors, want %d", p, col.Typ, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v over %v column: survivor %d = %d, want %d", p, col.Typ, i, got[i], want[i])
			}
		}
	}

	for _, col := range cols {
		for _, lit := range lits {
			for _, op := range ops {
				check(Pred{Col: 0, Op: op, Val: lit}, col)
			}
			for _, lit2 := range lits {
				check(Pred{Col: 0, Val: lit, Val2: lit2, Between: true}, col)
			}
		}
	}
}

func TestFilterBatchConjunction(t *testing.T) {
	const n = 100
	a := storage.NewDense(schema.Int64, n)
	b := storage.NewDense(schema.String, n)
	for i := 0; i < n; i++ {
		a.Append(storage.IntValue(int64(i)))
		if i%2 == 0 {
			b.Append(storage.StringValue("even"))
		} else {
			b.Append(storage.StringValue("odd"))
		}
	}
	c := Conjunction{Preds: []Pred{
		{Col: 0, Op: Ge, Val: storage.IntValue(10)},
		{Col: 0, Op: Lt, Val: storage.IntValue(20)},
		{Col: 1, Op: Eq, Val: storage.StringValue("even")},
	}}
	sel := make([]int32, n)
	for i := range sel {
		sel[i] = int32(i)
	}
	get := func(col int) *storage.DenseColumn {
		if col == 0 {
			return a
		}
		return b
	}
	out := c.FilterBatch(get, sel)
	if len(out) != 5 {
		t.Fatalf("survivors = %v, want the 5 even rows in [10,20)", out)
	}
	for i, idx := range out {
		if want := int32(10 + 2*i); idx != want {
			t.Fatalf("survivor %d = %d, want %d", i, idx, want)
		}
	}
	// An empty conjunction keeps everything.
	sel2 := []int32{3, 7}
	if out := (Conjunction{}).FilterBatch(get, sel2); len(out) != 2 {
		t.Fatalf("empty conjunction filtered rows: %v", out)
	}
}
