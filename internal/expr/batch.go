package expr

import (
	"nodb/internal/schema"
	"nodb/internal/storage"
)

// This file is the vectorized half of the package: predicates applied to
// whole column vectors through selection vectors. A selection vector holds
// the positions (within a batch) that are still alive; filtering shrinks
// it in place and never copies or moves values. The per-type inner loops
// are deliberately branch-free of Value boxing — they compare raw
// int64/float64/string slices against an unboxed literal, which is where
// the batch engine's throughput over per-row Eval comes from.

// FilterBatch refines sel — positions into the batch's column vectors —
// keeping only rows that satisfy every predicate. get maps a predicate's
// column index to its vector. Predicates apply in order, so sel shrinks
// monotonically and later predicates touch only surviving positions.
func (c Conjunction) FilterBatch(get func(col int) *storage.DenseColumn, sel []int32) []int32 {
	for _, p := range c.Preds {
		if len(sel) == 0 {
			return sel
		}
		sel = p.FilterColumn(get(p.Col), sel)
	}
	return sel
}

// FilterColumn refines sel in place, keeping positions of col that satisfy
// p. Same-type-family comparisons run tight typed loops; mixed-type
// literals (e.g. an int column against a float literal) fall back to the
// boxed Eval, whose semantics the loops replicate exactly.
func (p Pred) FilterColumn(col *storage.DenseColumn, sel []int32) []int32 {
	switch col.Typ {
	case schema.Int64:
		if p.Between {
			if p.Val.Typ == schema.Int64 && p.Val2.Typ == schema.Int64 {
				return filterBetweenInt(col.Ints, sel, p.Val.I, p.Val2.I)
			}
		} else if p.Val.Typ == schema.Int64 {
			return filterCmpInt(col.Ints, sel, p.Op, p.Val.I)
		}
	case schema.Float64:
		if p.Between {
			if p.Val.Typ != schema.String && p.Val2.Typ != schema.String {
				return filterBetweenFloat(col.Floats, sel, p.Val.AsFloat(), p.Val2.AsFloat())
			}
		} else if p.Val.Typ != schema.String {
			return filterCmpFloat(col.Floats, sel, p.Op, p.Val.AsFloat())
		}
	case schema.String:
		if p.Between {
			if p.Val.Typ == schema.String && p.Val2.Typ == schema.String {
				return filterBetweenString(col.Strs, sel, p.Val.S, p.Val2.S)
			}
		} else if p.Val.Typ == schema.String {
			return filterCmpString(col.Strs, sel, p.Op, p.Val.S)
		}
	}
	out := sel[:0]
	for _, i := range sel {
		if p.Eval(col.Value(int(i))) {
			out = append(out, i)
		}
	}
	return out
}

func filterCmpInt(v []int64, sel []int32, op CmpOp, x int64) []int32 {
	out := sel[:0]
	switch op {
	case Lt:
		for _, i := range sel {
			if v[i] < x {
				out = append(out, i)
			}
		}
	case Le:
		for _, i := range sel {
			if v[i] <= x {
				out = append(out, i)
			}
		}
	case Gt:
		for _, i := range sel {
			if v[i] > x {
				out = append(out, i)
			}
		}
	case Ge:
		for _, i := range sel {
			if v[i] >= x {
				out = append(out, i)
			}
		}
	case Eq:
		for _, i := range sel {
			if v[i] == x {
				out = append(out, i)
			}
		}
	case Ne:
		for _, i := range sel {
			if v[i] != x {
				out = append(out, i)
			}
		}
	}
	return out
}

func filterBetweenInt(v []int64, sel []int32, lo, hi int64) []int32 {
	out := sel[:0]
	for _, i := range sel {
		if x := v[i]; x >= lo && x <= hi {
			out = append(out, i)
		}
	}
	return out
}

func filterCmpFloat(v []float64, sel []int32, op CmpOp, x float64) []int32 {
	out := sel[:0]
	switch op {
	case Lt:
		for _, i := range sel {
			if v[i] < x {
				out = append(out, i)
			}
		}
	case Le:
		for _, i := range sel {
			if v[i] <= x {
				out = append(out, i)
			}
		}
	case Gt:
		for _, i := range sel {
			if v[i] > x {
				out = append(out, i)
			}
		}
	case Ge:
		for _, i := range sel {
			if v[i] >= x {
				out = append(out, i)
			}
		}
	case Eq:
		for _, i := range sel {
			if v[i] == x {
				out = append(out, i)
			}
		}
	case Ne:
		for _, i := range sel {
			if v[i] != x {
				out = append(out, i)
			}
		}
	}
	return out
}

func filterBetweenFloat(v []float64, sel []int32, lo, hi float64) []int32 {
	out := sel[:0]
	for _, i := range sel {
		if x := v[i]; x >= lo && x <= hi {
			out = append(out, i)
		}
	}
	return out
}

func filterCmpString(v []string, sel []int32, op CmpOp, x string) []int32 {
	out := sel[:0]
	switch op {
	case Lt:
		for _, i := range sel {
			if v[i] < x {
				out = append(out, i)
			}
		}
	case Le:
		for _, i := range sel {
			if v[i] <= x {
				out = append(out, i)
			}
		}
	case Gt:
		for _, i := range sel {
			if v[i] > x {
				out = append(out, i)
			}
		}
	case Ge:
		for _, i := range sel {
			if v[i] >= x {
				out = append(out, i)
			}
		}
	case Eq:
		for _, i := range sel {
			if v[i] == x {
				out = append(out, i)
			}
		}
	case Ne:
		for _, i := range sel {
			if v[i] != x {
				out = append(out, i)
			}
		}
	}
	return out
}

func filterBetweenString(v []string, sel []int32, lo, hi string) []int32 {
	out := sel[:0]
	for _, i := range sel {
		if x := v[i]; x >= lo && x <= hi {
			out = append(out, i)
		}
	}
	return out
}
