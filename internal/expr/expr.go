// Package expr implements bound scalar predicates and conjunctions over
// table columns, plus the interval algebra that turns WHERE clauses into
// per-column value ranges. Those ranges are what the adaptive machinery
// consumes: partial loading pushes them into the tokenizer, the adaptive
// store records them as covered regions, and the cracker uses them as
// partition bounds.
package expr

import (
	"fmt"
	"math"
	"strings"

	"nodb/internal/intervals"
	"nodb/internal/schema"
	"nodb/internal/storage"
)

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Gt
	Ge
	Eq
	Ne
)

func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "="
	case Ne:
		return "<>"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Pred is one predicate bound to a column index of a single table:
// either `col <op> val`, or `col BETWEEN val AND val2` (inclusive).
type Pred struct {
	Col     int
	Op      CmpOp
	Val     storage.Value
	Val2    storage.Value
	Between bool
}

// Eval reports whether value v satisfies the predicate.
func (p Pred) Eval(v storage.Value) bool {
	if p.Between {
		return v.Compare(p.Val) >= 0 && v.Compare(p.Val2) <= 0
	}
	c := v.Compare(p.Val)
	switch p.Op {
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	default:
		return false
	}
}

// EvalInt is Eval specialized for int64 columns compared against int64
// literals; the hot path of selective scans.
func (p Pred) EvalInt(v int64) bool {
	if p.Between {
		return v >= p.Val.I && v <= p.Val2.I
	}
	switch p.Op {
	case Lt:
		return v < p.Val.I
	case Le:
		return v <= p.Val.I
	case Gt:
		return v > p.Val.I
	case Ge:
		return v >= p.Val.I
	case Eq:
		return v == p.Val.I
	case Ne:
		return v != p.Val.I
	default:
		return false
	}
}

func (p Pred) String() string {
	if p.Between {
		return fmt.Sprintf("col%d BETWEEN %s AND %s", p.Col, p.Val, p.Val2)
	}
	return fmt.Sprintf("col%d %s %s", p.Col, p.Op, p.Val)
}

// Conjunction is an AND of predicates over one table.
type Conjunction struct {
	Preds []Pred
}

// Columns returns the distinct column indices referenced, ascending.
func (c Conjunction) Columns() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range c.Preds {
		if !seen[p.Col] {
			seen[p.Col] = true
			out = append(out, p.Col)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// OnColumn returns the predicates that reference col, preserving order.
func (c Conjunction) OnColumn(col int) []Pred {
	var out []Pred
	for _, p := range c.Preds {
		if p.Col == col {
			out = append(out, p)
		}
	}
	return out
}

// EvalRow evaluates the conjunction for one row; get returns the row's
// value for a column index.
func (c Conjunction) EvalRow(get func(col int) storage.Value) bool {
	for _, p := range c.Preds {
		if !p.Eval(get(p.Col)) {
			return false
		}
	}
	return true
}

// Empty reports whether there are no predicates.
func (c Conjunction) Empty() bool { return len(c.Preds) == 0 }

func (c Conjunction) String() string {
	parts := make([]string, len(c.Preds))
	for i, p := range c.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

// IntRange computes the half-open int64 interval implied by all predicates
// on column col (assumed of type Int64). The boolean reports whether the
// interval captures the predicates exactly; it is false when a `<>`
// predicate exists on the column (the range is then an over-approximation
// and the caller must still evaluate the residual predicate).
//
// With no predicates on the column, the full interval is returned (exact).
func (c Conjunction) IntRange(col int) (intervals.Interval, bool) {
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	exact := true
	for _, p := range c.Preds {
		if p.Col != col {
			continue
		}
		if p.Val.Typ != schema.Int64 || (p.Between && p.Val2.Typ != schema.Int64) {
			// A non-integer literal (e.g. a1 > 2.5) is not representable
			// as an int interval bound; keep the full range and mark it
			// inexact so callers re-evaluate the predicate.
			exact = false
			continue
		}
		if p.Between {
			if p.Val.I > lo {
				lo = p.Val.I
			}
			if h := satAdd1(p.Val2.I); h < hi {
				hi = h
			}
			continue
		}
		switch p.Op {
		case Lt:
			if p.Val.I < hi {
				hi = p.Val.I
			}
		case Le:
			if h := satAdd1(p.Val.I); h < hi {
				hi = h
			}
		case Gt:
			if g := satAdd1(p.Val.I); g > lo {
				lo = g
			}
		case Ge:
			if p.Val.I > lo {
				lo = p.Val.I
			}
		case Eq:
			if p.Val.I > lo {
				lo = p.Val.I
			}
			if h := satAdd1(p.Val.I); h < hi {
				hi = h
			}
		case Ne:
			exact = false
		}
	}
	if hi < lo {
		hi = lo // canonical empty interval
	}
	return intervals.Interval{Lo: lo, Hi: hi}, exact
}

// satAdd1 adds one, saturating at MaxInt64.
func satAdd1(v int64) int64 {
	if v == math.MaxInt64 {
		return v
	}
	return v + 1
}
