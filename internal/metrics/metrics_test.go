package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersAndSnapshot(t *testing.T) {
	var c Counters
	c.AddRawBytesRead(100)
	c.AddInternalBytesRead(10)
	c.AddInternalBytesWritten(20)
	c.AddSplitBytesRead(5)
	c.AddSplitBytesWritten(6)
	c.AddRowsTokenized(3)
	c.AddAttrsTokenized(9)
	c.AddValuesParsed(4)
	c.AddRowsAbandoned(1)
	c.AddPosMapHit(2)
	c.AddPosMapMiss(1)
	c.AddCacheHit(1)
	c.AddCacheMiss(2)

	s := c.Snapshot()
	if s.RawBytesRead != 100 || s.InternalBytesRead != 10 || s.InternalBytesWritten != 20 {
		t.Errorf("byte counters wrong: %+v", s)
	}
	if s.SplitBytesRead != 5 || s.SplitBytesWritten != 6 {
		t.Errorf("split counters wrong: %+v", s)
	}
	if s.RowsTokenized != 3 || s.AttrsTokenized != 9 || s.ValuesParsed != 4 || s.RowsAbandoned != 1 {
		t.Errorf("work counters wrong: %+v", s)
	}
	if s.PosMapHits != 2 || s.PosMapMisses != 1 || s.CacheHits != 1 || s.CacheMisses != 2 {
		t.Errorf("hit counters wrong: %+v", s)
	}
}

func TestSnapshotSubAdd(t *testing.T) {
	a := Snapshot{RawBytesRead: 100, RowsTokenized: 10}
	b := Snapshot{RawBytesRead: 30, RowsTokenized: 4}
	d := a.Sub(b)
	if d.RawBytesRead != 70 || d.RowsTokenized != 6 {
		t.Errorf("Sub = %+v", d)
	}
	s := b.Add(d)
	if s != a {
		t.Errorf("Add(Sub) != original: %+v", s)
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.AddRawBytesRead(1)
	c.AddCacheHit(1)
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("Reset left %+v", s)
	}
}

func TestConcurrentCounters(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddRawBytesRead(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().RawBytesRead; got != 8000 {
		t.Errorf("concurrent adds = %d, want 8000", got)
	}
}

func TestCostModelColdVsHot(t *testing.T) {
	m := DefaultCostModel()
	s := Snapshot{RawBytesRead: 120_000_000} // 1 second at 120 MB/s
	cold := m.Seconds(s)
	if cold < 0.9 || cold > 1.1 {
		t.Errorf("cold raw read = %v s, want ~1", cold)
	}
	m.HotRaw = true
	hot := m.Seconds(s)
	if hot >= cold/10 {
		t.Errorf("hot raw read %v should be far below cold %v", hot, cold)
	}
}

func TestCostModelInternalHot(t *testing.T) {
	m := DefaultCostModel()
	s := Snapshot{InternalBytesRead: 150_000_000}
	cold := m.Seconds(s)
	m.Hot = true
	hot := m.Seconds(s)
	if hot >= cold {
		t.Errorf("hot internal %v !< cold %v", hot, cold)
	}
}

func TestCostModelCPUTerms(t *testing.T) {
	m := DefaultCostModel()
	s := Snapshot{RowsTokenized: 1e9}
	if sec := m.Seconds(s); sec < 1 { // 1e9 * 25ns = 25s
		t.Errorf("tokenization cost missing: %v", sec)
	}
	if m.Duration(s) <= 0 {
		t.Error("Duration should be positive")
	}
}

func TestCostModelSplitBytesChargedAsRaw(t *testing.T) {
	m := DefaultCostModel()
	a := m.Seconds(Snapshot{RawBytesRead: 1e8})
	b := m.Seconds(Snapshot{SplitBytesRead: 1e8})
	if a != b {
		t.Errorf("split reads should cost like raw reads: %v vs %v", a, b)
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{RawBytesRead: 5, CacheHits: 2}
	str := s.String()
	if !strings.Contains(str, "raw=5B") || !strings.Contains(str, "cacheHit=2") {
		t.Errorf("String = %q", str)
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	if tm.Elapsed() < 0 {
		t.Error("Elapsed should be non-negative")
	}
}

func TestCostModelMemoryLimitSwap(t *testing.T) {
	m := DefaultCostModel()
	m.Hot = true
	s := Snapshot{InternalBytesWritten: 100 << 20}
	free := m.Seconds(s)
	m.MemoryLimitBytes = 50 << 20
	spill := m.Seconds(s)
	if spill <= free {
		t.Errorf("spilling writes should cost more: %v vs %v", spill, free)
	}
	// Under the limit nothing changes.
	small := Snapshot{InternalBytesWritten: 10 << 20}
	m2 := m
	m2.MemoryLimitBytes = 0
	if m.Seconds(small) != m2.Seconds(small) {
		t.Error("limit must not affect writes under it")
	}
}

func TestCostModelScriptOps(t *testing.T) {
	m := DefaultCostModel()
	s := Snapshot{ScriptOps: 1_000_000}
	if sec := m.Seconds(s); sec < 0.5 { // 1e6 * 1µs = 1s
		t.Errorf("script ops cost missing: %v", sec)
	}
}
