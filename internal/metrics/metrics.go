// Package metrics provides the counters and the I/O cost model used by the
// NoDB engine and the benchmark harness.
//
// The paper's experiments report response times on a 2008-era machine with
// two 7200rpm SATA disks in RAID-0 and tables of up to 10^9 tuples. This
// reproduction runs at laptop scale, so alongside wall-clock time every
// component reports *what it did* — raw-file bytes read, internal (binary)
// bytes read and written, tuples tokenized and parsed — and a CostModel
// converts those counters into modeled seconds. The model keeps the cold
// versus hot versus loading cost relationships of the paper intact even when
// the working set fits in the OS page cache.
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Counters accumulates work done by scans, loads and operators. All methods
// are safe for concurrent use; the tokenizer runs multiple workers.
type Counters struct {
	rawBytesRead       atomic.Int64 // bytes read from raw flat files
	internalBytesRead  atomic.Int64 // bytes read from binary/internal storage
	internalBytesWrite atomic.Int64 // bytes written to binary/internal storage
	splitBytesRead     atomic.Int64 // bytes read from split (cracked) files
	splitBytesWrite    atomic.Int64 // bytes written to split (cracked) files
	rowsTokenized      atomic.Int64 // rows whose boundaries were identified
	attrsTokenized     atomic.Int64 // attribute fields located within rows
	valuesParsed       atomic.Int64 // attribute fields converted to typed values
	rowsAbandoned      atomic.Int64 // rows abandoned early by a failed predicate
	posMapHits         atomic.Int64 // attribute locations served by the positional map
	posMapMisses       atomic.Int64
	cacheHits          atomic.Int64 // queries (or column requests) fully served from the adaptive store
	cacheMisses        atomic.Int64
	scriptOps          atomic.Int64 // interpreted script operations (baselines only)
	evictions          atomic.Int64 // adaptive structures evicted by the memory governor
	evictedBytes       atomic.Int64 // bytes reclaimed by those evictions
	snapBytesRead      atomic.Int64 // bytes read from snapshot/spill files (disk cache tier)
	snapBytesWrite     atomic.Int64 // bytes written to snapshot/spill files
	snapHits           atomic.Int64 // structures restored from the snapshot cache
	snapMisses         atomic.Int64 // restore attempts that found no usable snapshot
	snapSaves          atomic.Int64 // full snapshots written (close / periodic flush)
	snapSpills         atomic.Int64 // structures spilled to disk by eviction instead of discarded
	snapInvalidations  atomic.Int64 // stale or corrupt snapshot files/sections discarded
	portionsSkipped    atomic.Int64 // file portions pruned by a scan synopsis (zero bytes read)
	synopsisHits       atomic.Int64 // scans in which the synopsis pruned at least one portion
	shardsPruned       atomic.Int64 // whole shards skipped by the coordinator via cached synopses
	shardRetries       atomic.Int64 // shard sub-queries retried after a transient failure
	partialResults     atomic.Int64 // coordinator queries answered in partial_results degraded mode
	shardBytesMerged   atomic.Int64 // NDJSON payload bytes merged from shard streams
	resultCacheHits    atomic.Int64 // queries answered entirely from the result cache
	resultCacheMisses  atomic.Int64 // cacheable queries that had to execute
	queriesCollapsed   atomic.Int64 // duplicate in-flight queries served by a singleflight leader
	tailExtensions     atomic.Int64 // prefix-stable file growths folded in incrementally
	tailRowsAppended   atomic.Int64 // rows ingested by those incremental extensions
}

// AddScriptOps records interpreted per-record operations of an external
// script (Awk/Perl). The paper's scripting baselines are dominated by
// interpreter overhead, not I/O — roughly a microsecond per record — and
// this counter carries that cost into the model.
func (c *Counters) AddScriptOps(n int64) { c.scriptOps.Add(n) }

// AddRawBytesRead records bytes read from a raw flat file.
func (c *Counters) AddRawBytesRead(n int64) { c.rawBytesRead.Add(n) }

// AddInternalBytesRead records bytes read from internal binary storage.
func (c *Counters) AddInternalBytesRead(n int64) { c.internalBytesRead.Add(n) }

// AddInternalBytesWritten records bytes written to internal binary storage.
func (c *Counters) AddInternalBytesWritten(n int64) { c.internalBytesWrite.Add(n) }

// AddSplitBytesRead records bytes read from split files.
func (c *Counters) AddSplitBytesRead(n int64) { c.splitBytesRead.Add(n) }

// AddSplitBytesWritten records bytes written to split files.
func (c *Counters) AddSplitBytesWritten(n int64) { c.splitBytesWrite.Add(n) }

// AddRowsTokenized records rows whose boundaries were identified.
func (c *Counters) AddRowsTokenized(n int64) { c.rowsTokenized.Add(n) }

// AddAttrsTokenized records attribute fields located within rows.
func (c *Counters) AddAttrsTokenized(n int64) { c.attrsTokenized.Add(n) }

// AddValuesParsed records attribute fields converted to typed values.
func (c *Counters) AddValuesParsed(n int64) { c.valuesParsed.Add(n) }

// AddRowsAbandoned records rows abandoned early after a predicate failed.
func (c *Counters) AddRowsAbandoned(n int64) { c.rowsAbandoned.Add(n) }

// AddPosMapHit records attribute locations found via the positional map.
func (c *Counters) AddPosMapHit(n int64) { c.posMapHits.Add(n) }

// AddPosMapMiss records attribute locations the positional map did not know.
func (c *Counters) AddPosMapMiss(n int64) { c.posMapMisses.Add(n) }

// AddCacheHit records a column/region request served by the adaptive store.
func (c *Counters) AddCacheHit(n int64) { c.cacheHits.Add(n) }

// AddCacheMiss records a request that had to go back to the flat file.
func (c *Counters) AddCacheMiss(n int64) { c.cacheMisses.Add(n) }

// AddEviction records adaptive structures evicted by the memory governor.
func (c *Counters) AddEviction(n int64) { c.evictions.Add(n) }

// AddEvictedBytes records bytes reclaimed by governor evictions.
func (c *Counters) AddEvictedBytes(n int64) { c.evictedBytes.Add(n) }

// AddSnapshotBytesRead records bytes read from snapshot or spill files.
func (c *Counters) AddSnapshotBytesRead(n int64) { c.snapBytesRead.Add(n) }

// AddSnapshotBytesWritten records bytes written to snapshot or spill files.
func (c *Counters) AddSnapshotBytesWritten(n int64) { c.snapBytesWrite.Add(n) }

// AddSnapshotHit records structures restored from the snapshot cache.
func (c *Counters) AddSnapshotHit(n int64) { c.snapHits.Add(n) }

// AddSnapshotMiss records restore attempts that found no usable snapshot.
func (c *Counters) AddSnapshotMiss(n int64) { c.snapMisses.Add(n) }

// AddSnapshotSave records full snapshots written.
func (c *Counters) AddSnapshotSave(n int64) { c.snapSaves.Add(n) }

// AddSnapshotSpill records structures spilled to disk by eviction.
func (c *Counters) AddSnapshotSpill(n int64) { c.snapSpills.Add(n) }

// AddSnapshotInvalidation records stale/corrupt snapshot data discarded.
func (c *Counters) AddSnapshotInvalidation(n int64) { c.snapInvalidations.Add(n) }

// AddPortionsSkipped records file portions pruned outright by a scan
// synopsis: their bytes were never read and their rows never tokenized.
func (c *Counters) AddPortionsSkipped(n int64) { c.portionsSkipped.Add(n) }

// AddSynopsisHit records a scan in which synopsis bounds pruned at least
// one portion.
func (c *Counters) AddSynopsisHit(n int64) { c.synopsisHits.Add(n) }

// AddShardsPruned records whole shards a coordinator skipped because their
// cached synopses proved no portion could satisfy the predicates.
func (c *Counters) AddShardsPruned(n int64) { c.shardsPruned.Add(n) }

// AddShardRetries records shard sub-queries re-sent after a transient
// failure (connection error or timeout before any row was emitted).
func (c *Counters) AddShardRetries(n int64) { c.shardRetries.Add(n) }

// AddPartialResults records coordinator queries that completed in the
// partial_results degraded mode (one or more shards failed permanently).
func (c *Counters) AddPartialResults(n int64) { c.partialResults.Add(n) }

// AddShardBytesMerged records NDJSON payload bytes consumed from shard
// streams by the coordinator's merge operators.
func (c *Counters) AddShardBytesMerged(n int64) { c.shardBytesMerged.Add(n) }

// AddResultCacheHit records a query answered entirely from the result
// cache (no planning, no scan).
func (c *Counters) AddResultCacheHit(n int64) { c.resultCacheHits.Add(n) }

// AddResultCacheMiss records a cacheable query that found no usable entry
// and executed.
func (c *Counters) AddResultCacheMiss(n int64) { c.resultCacheMisses.Add(n) }

// AddQueryCollapsed records a duplicate in-flight query served by its
// singleflight leader's result instead of executing.
func (c *Counters) AddQueryCollapsed(n int64) { c.queriesCollapsed.Add(n) }

// AddTailExtension records a prefix-stable file growth folded into the
// learned structures incrementally instead of via full invalidation.
func (c *Counters) AddTailExtension(n int64) { c.tailExtensions.Add(n) }

// AddTailRowsAppended records rows ingested by incremental tail extensions.
func (c *Counters) AddTailRowsAppended(n int64) { c.tailRowsAppended.Add(n) }

// Snapshot is an immutable copy of the counters at one point in time.
type Snapshot struct {
	RawBytesRead         int64
	InternalBytesRead    int64
	InternalBytesWritten int64
	SplitBytesRead       int64
	SplitBytesWritten    int64
	RowsTokenized        int64
	AttrsTokenized       int64
	ValuesParsed         int64
	RowsAbandoned        int64
	PosMapHits           int64
	PosMapMisses         int64
	CacheHits            int64
	CacheMisses          int64
	ScriptOps            int64
	Evictions            int64
	EvictedBytes         int64
	SnapshotBytesRead    int64
	SnapshotBytesWritten int64
	SnapshotHits         int64
	SnapshotMisses       int64
	SnapshotSaves        int64
	SnapshotSpills       int64
	SnapshotInvalid      int64
	PortionsSkipped      int64
	SynopsisHits         int64
	ShardsPruned         int64
	ShardRetries         int64
	PartialResults       int64
	ShardBytesMerged     int64
	ResultCacheHits      int64
	ResultCacheMisses    int64
	QueriesCollapsed     int64
	TailExtensions       int64
	TailRowsAppended     int64
}

// Snapshot returns a point-in-time copy of all counters.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		RawBytesRead:         c.rawBytesRead.Load(),
		InternalBytesRead:    c.internalBytesRead.Load(),
		InternalBytesWritten: c.internalBytesWrite.Load(),
		SplitBytesRead:       c.splitBytesRead.Load(),
		SplitBytesWritten:    c.splitBytesWrite.Load(),
		RowsTokenized:        c.rowsTokenized.Load(),
		AttrsTokenized:       c.attrsTokenized.Load(),
		ValuesParsed:         c.valuesParsed.Load(),
		RowsAbandoned:        c.rowsAbandoned.Load(),
		PosMapHits:           c.posMapHits.Load(),
		PosMapMisses:         c.posMapMisses.Load(),
		CacheHits:            c.cacheHits.Load(),
		CacheMisses:          c.cacheMisses.Load(),
		ScriptOps:            c.scriptOps.Load(),
		Evictions:            c.evictions.Load(),
		EvictedBytes:         c.evictedBytes.Load(),
		SnapshotBytesRead:    c.snapBytesRead.Load(),
		SnapshotBytesWritten: c.snapBytesWrite.Load(),
		SnapshotHits:         c.snapHits.Load(),
		SnapshotMisses:       c.snapMisses.Load(),
		SnapshotSaves:        c.snapSaves.Load(),
		SnapshotSpills:       c.snapSpills.Load(),
		SnapshotInvalid:      c.snapInvalidations.Load(),
		PortionsSkipped:      c.portionsSkipped.Load(),
		SynopsisHits:         c.synopsisHits.Load(),
		ShardsPruned:         c.shardsPruned.Load(),
		ShardRetries:         c.shardRetries.Load(),
		PartialResults:       c.partialResults.Load(),
		ShardBytesMerged:     c.shardBytesMerged.Load(),
		ResultCacheHits:      c.resultCacheHits.Load(),
		ResultCacheMisses:    c.resultCacheMisses.Load(),
		QueriesCollapsed:     c.queriesCollapsed.Load(),
		TailExtensions:       c.tailExtensions.Load(),
		TailRowsAppended:     c.tailRowsAppended.Load(),
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.rawBytesRead.Store(0)
	c.internalBytesRead.Store(0)
	c.internalBytesWrite.Store(0)
	c.splitBytesRead.Store(0)
	c.splitBytesWrite.Store(0)
	c.rowsTokenized.Store(0)
	c.attrsTokenized.Store(0)
	c.valuesParsed.Store(0)
	c.rowsAbandoned.Store(0)
	c.posMapHits.Store(0)
	c.posMapMisses.Store(0)
	c.cacheHits.Store(0)
	c.cacheMisses.Store(0)
	c.scriptOps.Store(0)
	c.evictions.Store(0)
	c.evictedBytes.Store(0)
	c.snapBytesRead.Store(0)
	c.snapBytesWrite.Store(0)
	c.snapHits.Store(0)
	c.snapMisses.Store(0)
	c.snapSaves.Store(0)
	c.snapSpills.Store(0)
	c.snapInvalidations.Store(0)
	c.portionsSkipped.Store(0)
	c.synopsisHits.Store(0)
	c.shardsPruned.Store(0)
	c.shardRetries.Store(0)
	c.partialResults.Store(0)
	c.shardBytesMerged.Store(0)
	c.resultCacheHits.Store(0)
	c.resultCacheMisses.Store(0)
	c.queriesCollapsed.Store(0)
	c.tailExtensions.Store(0)
	c.tailRowsAppended.Store(0)
}

// Sub returns the delta s - prev, counter by counter. Use it to attribute
// work to a single query: snapshot before, snapshot after, subtract.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		RawBytesRead:         s.RawBytesRead - prev.RawBytesRead,
		InternalBytesRead:    s.InternalBytesRead - prev.InternalBytesRead,
		InternalBytesWritten: s.InternalBytesWritten - prev.InternalBytesWritten,
		SplitBytesRead:       s.SplitBytesRead - prev.SplitBytesRead,
		SplitBytesWritten:    s.SplitBytesWritten - prev.SplitBytesWritten,
		RowsTokenized:        s.RowsTokenized - prev.RowsTokenized,
		AttrsTokenized:       s.AttrsTokenized - prev.AttrsTokenized,
		ValuesParsed:         s.ValuesParsed - prev.ValuesParsed,
		RowsAbandoned:        s.RowsAbandoned - prev.RowsAbandoned,
		PosMapHits:           s.PosMapHits - prev.PosMapHits,
		PosMapMisses:         s.PosMapMisses - prev.PosMapMisses,
		CacheHits:            s.CacheHits - prev.CacheHits,
		CacheMisses:          s.CacheMisses - prev.CacheMisses,
		ScriptOps:            s.ScriptOps - prev.ScriptOps,
		Evictions:            s.Evictions - prev.Evictions,
		EvictedBytes:         s.EvictedBytes - prev.EvictedBytes,
		SnapshotBytesRead:    s.SnapshotBytesRead - prev.SnapshotBytesRead,
		SnapshotBytesWritten: s.SnapshotBytesWritten - prev.SnapshotBytesWritten,
		SnapshotHits:         s.SnapshotHits - prev.SnapshotHits,
		SnapshotMisses:       s.SnapshotMisses - prev.SnapshotMisses,
		SnapshotSaves:        s.SnapshotSaves - prev.SnapshotSaves,
		SnapshotSpills:       s.SnapshotSpills - prev.SnapshotSpills,
		SnapshotInvalid:      s.SnapshotInvalid - prev.SnapshotInvalid,
		PortionsSkipped:      s.PortionsSkipped - prev.PortionsSkipped,
		SynopsisHits:         s.SynopsisHits - prev.SynopsisHits,
		ShardsPruned:         s.ShardsPruned - prev.ShardsPruned,
		ShardRetries:         s.ShardRetries - prev.ShardRetries,
		PartialResults:       s.PartialResults - prev.PartialResults,
		ShardBytesMerged:     s.ShardBytesMerged - prev.ShardBytesMerged,
		ResultCacheHits:      s.ResultCacheHits - prev.ResultCacheHits,
		ResultCacheMisses:    s.ResultCacheMisses - prev.ResultCacheMisses,
		QueriesCollapsed:     s.QueriesCollapsed - prev.QueriesCollapsed,
		TailExtensions:       s.TailExtensions - prev.TailExtensions,
		TailRowsAppended:     s.TailRowsAppended - prev.TailRowsAppended,
	}
}

// Add returns the elementwise sum s + o.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return o.Sub(Snapshot{}.Sub(s))
}

func (s Snapshot) String() string {
	return fmt.Sprintf(
		"raw=%dB internalR=%dB internalW=%dB splitR=%dB splitW=%dB rows=%d attrs=%d parsed=%d abandoned=%d pmHit=%d pmMiss=%d cacheHit=%d cacheMiss=%d evict=%d evictB=%dB snapR=%dB snapW=%dB snapHit=%d snapMiss=%d snapSpill=%d snapInvalid=%d portionsSkipped=%d synHit=%d shardsPruned=%d shardRetries=%d partialResults=%d shardMergedB=%dB resultHit=%d resultMiss=%d collapsed=%d",
		s.RawBytesRead, s.InternalBytesRead, s.InternalBytesWritten,
		s.SplitBytesRead, s.SplitBytesWritten,
		s.RowsTokenized, s.AttrsTokenized, s.ValuesParsed, s.RowsAbandoned,
		s.PosMapHits, s.PosMapMisses, s.CacheHits, s.CacheMisses,
		s.Evictions, s.EvictedBytes,
		s.SnapshotBytesRead, s.SnapshotBytesWritten,
		s.SnapshotHits, s.SnapshotMisses, s.SnapshotSpills, s.SnapshotInvalid,
		s.PortionsSkipped, s.SynopsisHits,
		s.ShardsPruned, s.ShardRetries, s.PartialResults, s.ShardBytesMerged,
		s.ResultCacheHits, s.ResultCacheMisses, s.QueriesCollapsed)
}

// CostModel converts a work Snapshot into modeled seconds. Throughputs are
// bytes per second; per-item costs are seconds per item. The defaults are
// calibrated to the paper's hardware class (2008 SATA RAID-0, one core of a
// 2.4GHz Core2 Quad) so that the reproduced series land in the same regime
// as the published figures.
type CostModel struct {
	// RawReadBps is sequential read throughput from raw flat files when
	// cold. The paper's RAID-0 of two 7200rpm disks sustains roughly
	// 100–200 MB/s; we use a conservative value.
	RawReadBps float64
	// InternalReadBps is read throughput from the engine's binary store
	// when cold (no parsing needed, larger sequential blocks).
	InternalReadBps float64
	// InternalWriteBps is write throughput to the binary store.
	InternalWriteBps float64
	// TokenizeRowSec is CPU cost to find a row boundary.
	TokenizeRowSec float64
	// TokenizeAttrSec is CPU cost to locate one attribute within a row.
	TokenizeAttrSec float64
	// ParseValueSec is CPU cost to convert one field to a typed value.
	ParseValueSec float64
	// ScriptOpSec is the per-record overhead of an interpreted script
	// (Awk/Perl). The paper's Awk runs land around 1–2 µs per row on its
	// hardware; this term is what makes scripts an order of magnitude
	// slower than the DBMS once data is loaded (Figure 1b).
	ScriptOpSec float64
	// Hot indicates data is memory resident: byte costs for *internal*
	// storage are waived (raw files still cost RawReadBps on first touch,
	// but callers model hot raw scans by also setting HotRaw).
	Hot bool
	// HotRaw indicates the raw file itself is in the OS cache; raw reads
	// then cost MemReadBps instead of RawReadBps.
	HotRaw bool
	// MemReadBps is memory bandwidth used for hot reads.
	MemReadBps float64
	// SnapshotReadBps is read throughput from snapshot/spill files: one
	// pre-sized sequential file read end-to-end with no per-column seeks,
	// so it lands modestly above InternalReadBps. Snapshot files live on
	// disk and are read once per restore, so this rate always applies —
	// Hot does not waive it (same treatment as split files).
	SnapshotReadBps float64
	// SnapshotWriteBps is write throughput to snapshot/spill files (one
	// buffered sequential stream; disk-bound like InternalWriteBps).
	SnapshotWriteBps float64
	// ColdWrites charges internal-store writes at disk bandwidth even
	// when Hot (the engine persists loaded columns to its binary store;
	// reads may still be served from memory).
	ColdWrites bool
	// MemoryLimitBytes models the machine's RAM for loading: internal
	// bytes written beyond this limit within one measurement spill to
	// disk at SwapPenalty times the write cost. This is the paper's §2.1
	// observation that loading becomes expensive exactly when "the system
	// reaches the memory limits and needs to write the table back to
	// disk". Zero disables the limit.
	MemoryLimitBytes int64
	// SwapPenalty multiplies the disk write cost of spilled bytes
	// (default 6 when a memory limit is set).
	SwapPenalty float64
}

// DefaultCostModel returns the model calibrated to the paper's hardware
// class. Cold by default.
func DefaultCostModel() CostModel {
	return CostModel{
		RawReadBps:       120e6, // ~120 MB/s sequential RAID-0
		InternalReadBps:  150e6,
		InternalWriteBps: 90e6,
		TokenizeRowSec:   25e-9,
		TokenizeAttrSec:  12e-9,
		ParseValueSec:    20e-9,
		ScriptOpSec:      1e-6,
		MemReadBps:       3e9,
		SnapshotReadBps:  180e6,
		SnapshotWriteBps: 90e6,
	}
}

// Seconds returns the modeled elapsed seconds for the work in s.
func (m CostModel) Seconds(s Snapshot) float64 {
	rawBps := m.RawReadBps
	if m.HotRaw {
		rawBps = m.MemReadBps
	}
	intR, intW := m.InternalReadBps, m.InternalWriteBps
	if m.Hot {
		intR, intW = m.MemReadBps, m.MemReadBps
	}
	if m.ColdWrites {
		intW = m.InternalWriteBps
	}
	// Internal writes within the memory limit go at intW (memory when
	// hot); the excess spills to disk with the swap penalty.
	written := float64(s.InternalBytesWritten)
	writeCost := written / intW
	if m.MemoryLimitBytes > 0 && s.InternalBytesWritten > m.MemoryLimitBytes {
		pen := m.SwapPenalty
		if pen <= 0 {
			pen = 6
		}
		within := float64(m.MemoryLimitBytes)
		excess := written - within
		writeCost = within/intW + excess*pen/m.InternalWriteBps
	}

	// Snapshot files, like split files, live on disk regardless of the
	// Hot flags; models built as literals may leave the snapshot rates
	// zero, in which case they inherit the internal-store rates.
	snapR, snapW := m.SnapshotReadBps, m.SnapshotWriteBps
	if snapR <= 0 {
		snapR = m.InternalReadBps
	}
	if snapW <= 0 {
		snapW = m.InternalWriteBps
	}

	// Split files live on disk regardless of whether the column store is
	// memory resident, so their writes always pay disk bandwidth.
	t := float64(s.RawBytesRead)/rawBps +
		float64(s.SplitBytesRead)/rawBps +
		float64(s.InternalBytesRead)/intR +
		writeCost +
		float64(s.SplitBytesWritten)/m.InternalWriteBps +
		float64(s.SnapshotBytesRead)/snapR +
		float64(s.SnapshotBytesWritten)/snapW +
		float64(s.RowsTokenized)*m.TokenizeRowSec +
		float64(s.AttrsTokenized)*m.TokenizeAttrSec +
		float64(s.ValuesParsed)*m.ParseValueSec +
		float64(s.ScriptOps)*m.ScriptOpSec
	return t
}

// Duration is Seconds rendered as a time.Duration for display.
func (m CostModel) Duration(s Snapshot) time.Duration {
	return time.Duration(m.Seconds(s) * float64(time.Second))
}

// Timer measures wall-clock intervals; a convenience for the bench harness.
type Timer struct{ start time.Time }

// StartTimer begins a wall-clock measurement.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed reports the wall-clock time since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }
