package errs

import (
	"errors"
	"io/fs"
	"os"
	"syscall"
	"testing"
)

func TestWrapMatchesKindAndCause(t *testing.T) {
	cause := &os.PathError{Op: "read", Path: "/x", Err: syscall.EIO}
	err := Wrap(ErrRawIO, "scan read", "/x", cause)
	if !errors.Is(err, ErrRawIO) {
		t.Fatal("wrapped error must match its category sentinel")
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatal("wrapped error must still match the underlying cause")
	}
	if errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatal("wrapped error must not match other categories")
	}
}

func TestWrapNilAndDoubleWrap(t *testing.T) {
	if Wrap(ErrRawIO, "op", "p", nil) != nil {
		t.Fatal("Wrap(nil) must be nil")
	}
	inner := Wrap(ErrRawIO, "inner", "p", syscall.EIO)
	outer := Wrap(ErrRawIO, "outer", "p", inner)
	if outer != inner {
		t.Fatal("re-wrapping under the same category must not stack")
	}
}

func TestNewSynthesized(t *testing.T) {
	err := New(ErrFileShrunk, "scan count", "/x")
	if !errors.Is(err, ErrFileShrunk) {
		t.Fatal("synthesized error must match its sentinel")
	}
	if err.Error() == "" {
		t.Fatal("synthesized error must render a message")
	}
}

func TestClassifyWrite(t *testing.T) {
	enospc := &os.PathError{Op: "write", Path: "/x", Err: syscall.ENOSPC}
	if err := ClassifyWrite("save", "/x", enospc); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("ENOSPC must classify as ErrDiskFull, got %v", err)
	}
	edquot := ClassifyWrite("save", "/x", syscall.EDQUOT)
	if !errors.Is(edquot, ErrDiskFull) {
		t.Fatal("EDQUOT must classify as ErrDiskFull")
	}
	other := errors.New("boom")
	if err := ClassifyWrite("save", "/x", other); err != other {
		t.Fatalf("non-space errors must pass through, got %v", err)
	}
	if ClassifyWrite("save", "/x", nil) != nil {
		t.Fatal("ClassifyWrite(nil) must be nil")
	}
}

func TestIsDiskFull(t *testing.T) {
	if IsDiskFull(nil) {
		t.Fatal("nil is not disk-full")
	}
	if !IsDiskFull(syscall.ENOSPC) || !IsDiskFull(New(ErrDiskFull, "op", "")) {
		t.Fatal("both raw ENOSPC and classified ErrDiskFull must report disk-full")
	}
	if IsDiskFull(syscall.EIO) {
		t.Fatal("EIO is not disk-full")
	}
}

func TestIsNotExist(t *testing.T) {
	err := Wrap(ErrRawIO, "open", "/x", &os.PathError{Op: "open", Path: "/x", Err: fs.ErrNotExist})
	if !IsNotExist(err) {
		t.Fatal("IsNotExist must unwrap through the taxonomy")
	}
	if IsNotExist(New(ErrRawIO, "open", "/x")) {
		t.Fatal("a synthesized error is not not-exist")
	}
}
