// Package errs defines the engine's typed error taxonomy. Every failure
// that crosses a package boundary is classified into one of a small set
// of errors.Is-able categories, so callers (and tests) can distinguish
// "the raw file is unreadable" from "the snapshot is corrupt" from "the
// disk is full" without string matching.
//
// Errors are produced with Wrap (or the IOError type directly), which
// makes errors.Is match BOTH the category sentinel and the underlying
// cause — errors.Is(err, ErrDiskFull) and errors.Is(err, syscall.ENOSPC)
// can hold simultaneously.
package errs

import (
	"errors"
	"fmt"
	"io/fs"
	"syscall"
)

// Category sentinels. Match with errors.Is.
var (
	// ErrRawIO marks a read failure against a raw data file (the
	// in-situ CSV/NDJSON source) — open, stat, or read errors observed
	// while scanning, tokenizing, or position-map fetching.
	ErrRawIO = errors.New("raw file I/O error")

	// ErrSnapshotCorrupt marks a snapshot or spill file whose content
	// failed validation (bad magic, truncated frame, checksum or
	// signature mismatch). Distinct from ErrRawIO: the raw source is
	// fine, only the derived cache is damaged.
	ErrSnapshotCorrupt = errors.New("snapshot corrupt")

	// ErrDiskFull marks a write that failed for lack of space (ENOSPC
	// or EDQUOT). Write paths that see it degrade to memory-only
	// operation instead of failing queries.
	ErrDiskFull = errors.New("disk full")

	// ErrFileShrunk marks a raw file that got shorter between the size
	// snapshot taken at open/attach time and a subsequent read — the
	// file was truncated or replaced under us. Results computed against
	// the stale size would be silently wrong, so reads fail instead.
	ErrFileShrunk = errors.New("raw file shrunk during scan")

	// ErrShardUnavailable marks a cluster shard that could not serve a
	// request after the retry budget was exhausted.
	ErrShardUnavailable = errors.New("shard unavailable")

	// ErrCircuitOpen marks a shard request refused locally because the
	// shard's circuit breaker is open — no network I/O was attempted.
	ErrCircuitOpen = errors.New("shard circuit open")
)

// IOError attaches a category sentinel to an underlying cause.
// errors.Is(e, e.Kind) is true, and errors.Is(e, x) also consults the
// wrapped cause chain, so both the taxonomy and the original error
// (fs.PathError, syscall errno, ...) stay matchable.
type IOError struct {
	// Kind is the category sentinel (ErrRawIO, ErrDiskFull, ...).
	Kind error
	// Op names the failing operation ("scan read", "snapshot save").
	Op string
	// Path is the file involved, when known.
	Path string
	// Err is the underlying cause; may be nil for synthesized
	// conditions (e.g. a shrunk file detected by a short read).
	Err error
}

func (e *IOError) Error() string {
	msg := e.Kind.Error()
	if e.Err != nil {
		msg = e.Err.Error()
	}
	if e.Path != "" {
		return fmt.Sprintf("%s: %s: %s", e.Op, e.Path, msg)
	}
	return fmt.Sprintf("%s: %s", e.Op, msg)
}

// Is matches the category sentinel; the cause chain is handled by
// Unwrap, which errors.Is walks on its own.
func (e *IOError) Is(target error) bool { return target == e.Kind }

func (e *IOError) Unwrap() error { return e.Err }

// Wrap classifies err under kind. A nil err returns nil so call sites
// can wrap unconditionally.
func Wrap(kind error, op, path string, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, kind) {
		return err // already classified; don't stack categories
	}
	return &IOError{Kind: kind, Op: op, Path: path, Err: err}
}

// New synthesizes a classified error with no underlying cause.
func New(kind error, op, path string) error {
	return &IOError{Kind: kind, Op: op, Path: path}
}

// IsDiskFull reports whether err is an out-of-space condition, either
// already classified as ErrDiskFull or a raw ENOSPC/EDQUOT from the
// kernel (possibly inside an fs.PathError).
func IsDiskFull(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrDiskFull) {
		return true
	}
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}

// ClassifyWrite wraps a write-path error: out-of-space conditions become
// ErrDiskFull, everything else keeps err's own classification (or none).
func ClassifyWrite(op, path string, err error) error {
	if err == nil {
		return nil
	}
	if IsDiskFull(err) {
		return Wrap(ErrDiskFull, op, path, err)
	}
	return err
}

// IsNotExist reports whether err is a file-not-found, unwrapping through
// the taxonomy.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
