// Package schema implements automatic schema discovery over flat files
// (paper §5.6): delimiter sniffing, header detection, and type inference.
// The task runs once, when a file is first linked (or first queried), by
// sampling a prefix of the file.
package schema

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"nodb/internal/errs"
	"nodb/internal/scan"
	"nodb/internal/vfs"
)

// Type is an attribute's inferred data type.
type Type int

// Supported attribute types.
const (
	Int64 Type = iota
	Float64
	String
)

func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// widen returns the narrowest type that can represent both a and b.
func widen(a, b Type) Type {
	if a == b {
		return a
	}
	if a == String || b == String {
		return String
	}
	return Float64 // int + float
}

// Column describes one attribute.
type Column struct {
	Name string
	Type Type
}

// Schema describes a flat file's structure.
type Schema struct {
	// Format is the file's on-disk layout. Delimiter and HasHeader only
	// apply to CSV; NDJSON columns are located by name per row.
	Format    scan.Format
	Delimiter byte
	HasHeader bool
	Columns   []Column
}

// FieldNames returns the column names in attribute order — the key set an
// NDJSON scan locates fields by.
func (s *Schema) FieldNames() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// NumCols returns the number of attributes.
func (s *Schema) NumCols() int { return len(s.Columns) }

// ColIndex returns the index of the named column, or -1. Names compare
// case-insensitively.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = fmt.Sprintf("%s %s", c.Name, c.Type)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// DetectOptions tunes detection.
type DetectOptions struct {
	// SampleBytes is how much of the file prefix to inspect (default 256KiB).
	SampleBytes int
	// SampleRows caps the rows inspected for type inference (default 1000).
	SampleRows int
	// Delimiter forces the delimiter instead of sniffing.
	Delimiter byte
	// Format forces the file format instead of sniffing: "csv" skips the
	// NDJSON probe, "ndjson" skips delimiter sniffing. Empty auto-detects;
	// anything else is an error.
	Format string
	// FS is the filesystem the sample is read through; nil means the
	// real disk.
	FS vfs.FS
}

func (o DetectOptions) sampleBytes() int {
	if o.SampleBytes <= 0 {
		return 256 << 10
	}
	return o.SampleBytes
}

func (o DetectOptions) sampleRows() int {
	if o.SampleRows <= 0 {
		return 1000
	}
	return o.SampleRows
}

var candidateDelims = []byte{',', '\t', ';', '|'}

// Detect infers the schema of the file at path by sampling its prefix.
func Detect(path string, opts DetectOptions) (*Schema, error) {
	f, err := vfs.Default(opts.FS).Open(path)
	if err != nil {
		return nil, errs.Wrap(errs.ErrRawIO, "schema detect", path, err)
	}
	defer f.Close()
	buf := make([]byte, opts.sampleBytes())
	n, err := io.ReadFull(f, buf)
	// A short sample (ErrUnexpectedEOF with bytes read) is normal for
	// small files; the same error with zero bytes is a read fault.
	if err != nil && err != io.EOF && !(err == io.ErrUnexpectedEOF && n > 0) {
		return nil, errs.Wrap(errs.ErrRawIO, "schema detect", path, err)
	}
	return DetectBytes(buf[:n], opts)
}

// DetectBytes infers a schema from a sample of file content. A sample
// whose first non-whitespace byte opens a JSON object is detected as
// NDJSON (one object per line, columns named by keys); everything else
// goes through delimiter sniffing as CSV.
func DetectBytes(sample []byte, opts DetectOptions) (*Schema, error) {
	lines := splitSampleLines(sample, opts.sampleRows()+1)
	if len(lines) == 0 {
		return nil, fmt.Errorf("schema: empty file")
	}

	switch opts.Format {
	case "ndjson":
		return detectNDJSON(lines)
	case "csv":
		// fall through to delimiter sniffing
	case "":
		if opts.Delimiter == 0 && scan.LooksLikeJSONObject(sample) {
			return detectNDJSON(lines)
		}
	default:
		return nil, fmt.Errorf("schema: unknown format %q (want \"csv\" or \"ndjson\")", opts.Format)
	}

	delim := opts.Delimiter
	if delim == 0 {
		delim = sniffDelimiter(lines)
	}

	first := splitFields(lines[0], delim)
	ncols := len(first)
	if ncols == 0 {
		return nil, fmt.Errorf("schema: could not tokenize first row")
	}

	// Infer types over data rows, tentatively treating row 0 as data.
	sawData := false
	rowType := func(fields [][]byte, acc []Type) bool {
		if len(fields) != ncols {
			return false
		}
		for i, fb := range fields {
			acc[i] = widen(acc[i], fieldType(fb))
		}
		return true
	}

	restTypes := make([]Type, ncols)
	for _, l := range lines[1:] {
		fields := splitFields(l, delim)
		if rowType(fields, restTypes) {
			sawData = true
		}
	}

	// Header heuristic: the first row is a header when its fields are all
	// non-numeric strings while subsequent rows contain numeric data, or
	// when every first-row field names itself uniquely and is not
	// parsable under the rest's types.
	hasHeader := false
	if sawData {
		firstAllString := true
		for _, fb := range first {
			if fieldType(fb) != String {
				firstAllString = false
				break
			}
		}
		restAnyNumeric := false
		for _, tp := range restTypes {
			if tp != String {
				restAnyNumeric = true
				break
			}
		}
		hasHeader = firstAllString && restAnyNumeric
	}

	var cols []Column
	if hasHeader {
		cols = make([]Column, ncols)
		for i, fb := range first {
			name := strings.TrimSpace(string(fb))
			if name == "" {
				name = fmt.Sprintf("a%d", i+1)
			}
			cols[i] = Column{Name: name, Type: restTypes[i]}
		}
	} else {
		// Row 0 is data: fold it into the types.
		all := restTypes
		if !sawData {
			all = make([]Type, ncols)
		}
		for i, fb := range first {
			all[i] = widen(all[i], fieldType(fb))
		}
		cols = make([]Column, ncols)
		for i := range cols {
			cols[i] = Column{Name: fmt.Sprintf("a%d", i+1), Type: all[i]}
		}
	}
	return &Schema{Delimiter: delim, HasHeader: hasHeader, Columns: cols}, nil
}

// detectNDJSON infers an NDJSON schema: columns are the keys of the
// sampled objects in first-appearance order; types come from the raw value
// tokens (integers narrow to Int64, other numbers to Float64, everything
// else — strings, literals, nested composites — is String).
func detectNDJSON(lines [][]byte) (*Schema, error) {
	var cols []Column
	index := map[string]int{}
	for _, l := range lines {
		if len(l) == 0 {
			continue
		}
		err := scan.WalkJSONObject(l, func(key string, value []byte) bool {
			t := jsonFieldType(value)
			if i, ok := index[key]; ok {
				cols[i].Type = widen(cols[i].Type, t)
				return true
			}
			index[key] = len(cols)
			cols = append(cols, Column{Name: key, Type: t})
			return true
		})
		if err != nil {
			return nil, fmt.Errorf("schema: %w", err)
		}
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("schema: no keys in NDJSON sample")
	}
	return &Schema{Format: scan.FormatNDJSON, Columns: cols}, nil
}

// jsonFieldType classifies a raw JSON value token.
func jsonFieldType(b []byte) Type {
	if len(b) == 0 {
		return String
	}
	if b[0] == '-' || (b[0] >= '0' && b[0] <= '9') {
		if scan.LooksLikeInt(b) {
			return Int64
		}
		if scan.LooksLikeFloat(b) {
			return Float64
		}
	}
	return String
}

// fieldType classifies a single field.
func fieldType(b []byte) Type {
	if scan.LooksLikeInt(b) {
		return Int64
	}
	if scan.LooksLikeFloat(b) {
		return Float64
	}
	return String
}

// splitSampleLines splits the sample into at most maxLines complete lines;
// an incomplete trailing line (cut by the sample window) is dropped unless
// it is the only line.
func splitSampleLines(sample []byte, maxLines int) [][]byte {
	var lines [][]byte
	for len(sample) > 0 && len(lines) < maxLines {
		i := bytes.IndexByte(sample, '\n')
		if i < 0 {
			if len(lines) == 0 {
				lines = append(lines, trimCR(sample))
			}
			break
		}
		lines = append(lines, trimCR(sample[:i]))
		sample = sample[i+1:]
	}
	return lines
}

func trimCR(b []byte) []byte {
	if len(b) > 0 && b[len(b)-1] == '\r' {
		return b[:len(b)-1]
	}
	return b
}

func splitFields(line []byte, delim byte) [][]byte {
	var out [][]byte
	for {
		i := bytes.IndexByte(line, delim)
		if i < 0 {
			out = append(out, line)
			return out
		}
		out = append(out, line[:i])
		line = line[i+1:]
	}
}

// sniffDelimiter picks the candidate delimiter with the most consistent
// nonzero per-line count across the sample.
func sniffDelimiter(lines [][]byte) byte {
	best := byte(',')
	bestScore := -1
	for _, d := range candidateDelims {
		counts := map[int]int{}
		for _, l := range lines {
			if n := bytes.Count(l, []byte{d}); n > 0 {
				counts[n]++
			}
		}
		score := 0
		for _, c := range counts {
			if c > score {
				score = c
			}
		}
		// Prefer a delimiter that appears consistently; ties go to the
		// earlier candidate (comma first).
		if score > bestScore {
			best, bestScore = d, score
		}
	}
	return best
}
