package schema

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nodb/internal/scan"
)

func detect(t *testing.T, content string, opts DetectOptions) *Schema {
	t.Helper()
	s, err := DetectBytes([]byte(content), opts)
	if err != nil {
		t.Fatalf("DetectBytes: %v", err)
	}
	return s
}

func TestDetectInts(t *testing.T) {
	s := detect(t, "1,2,3\n4,5,6\n", DetectOptions{})
	if s.NumCols() != 3 {
		t.Fatalf("NumCols = %d, want 3", s.NumCols())
	}
	for i, c := range s.Columns {
		if c.Type != Int64 {
			t.Errorf("col %d type = %v, want int64", i, c.Type)
		}
	}
	if s.HasHeader {
		t.Error("no header expected")
	}
	if s.Columns[0].Name != "a1" || s.Columns[2].Name != "a3" {
		t.Errorf("default names wrong: %v", s)
	}
}

func TestDetectHeader(t *testing.T) {
	s := detect(t, "id,price,name\n1,2.5,abc\n2,3.5,def\n", DetectOptions{})
	if !s.HasHeader {
		t.Fatal("header not detected")
	}
	wantNames := []string{"id", "price", "name"}
	wantTypes := []Type{Int64, Float64, String}
	for i, c := range s.Columns {
		if c.Name != wantNames[i] {
			t.Errorf("col %d name = %q, want %q", i, c.Name, wantNames[i])
		}
		if c.Type != wantTypes[i] {
			t.Errorf("col %d type = %v, want %v", i, c.Type, wantTypes[i])
		}
	}
}

func TestDetectAllStringsNoHeader(t *testing.T) {
	// All rows strings: cannot distinguish header; treat row 0 as data.
	s := detect(t, "abc,def\nghi,jkl\n", DetectOptions{})
	if s.HasHeader {
		t.Error("all-string file should not claim a header")
	}
	for _, c := range s.Columns {
		if c.Type != String {
			t.Errorf("type = %v, want string", c.Type)
		}
	}
}

func TestDetectFloatWidening(t *testing.T) {
	s := detect(t, "1,2\n3.5,4\n", DetectOptions{})
	if s.Columns[0].Type != Float64 {
		t.Errorf("int+float should widen to float, got %v", s.Columns[0].Type)
	}
	if s.Columns[1].Type != Int64 {
		t.Errorf("pure int column widened incorrectly to %v", s.Columns[1].Type)
	}
}

func TestDetectStringWidening(t *testing.T) {
	s := detect(t, "1,2\nx,4\n", DetectOptions{})
	if s.Columns[0].Type != String {
		t.Errorf("int+string should widen to string, got %v", s.Columns[0].Type)
	}
}

func TestDetectDelimiterSniff(t *testing.T) {
	cases := []struct {
		content string
		want    byte
	}{
		{"1,2,3\n4,5,6\n", ','},
		{"1\t2\t3\n4\t5\t6\n", '\t'},
		{"1|2|3\n4|5|6\n", '|'},
		{"1;2;3\n4;5;6\n", ';'},
	}
	for _, c := range cases {
		s := detect(t, c.content, DetectOptions{})
		if s.Delimiter != c.want {
			t.Errorf("content %q: delimiter = %q, want %q", c.content, s.Delimiter, c.want)
		}
	}
}

func TestDetectForcedDelimiter(t *testing.T) {
	s := detect(t, "1,2;3\n", DetectOptions{Delimiter: ';'})
	if s.Delimiter != ';' || s.NumCols() != 2 {
		t.Errorf("forced delimiter ignored: %v cols=%d", s.Delimiter, s.NumCols())
	}
}

func TestDetectSingleColumn(t *testing.T) {
	s := detect(t, "1\n2\n3\n", DetectOptions{})
	if s.NumCols() != 1 || s.Columns[0].Type != Int64 {
		t.Errorf("single column: %v", s)
	}
}

func TestDetectSingleLineNoNewline(t *testing.T) {
	s := detect(t, "1,2,3", DetectOptions{})
	if s.NumCols() != 3 || s.HasHeader {
		t.Errorf("single line: %v header=%v", s, s.HasHeader)
	}
}

func TestDetectEmpty(t *testing.T) {
	if _, err := DetectBytes(nil, DetectOptions{}); err == nil {
		t.Error("empty input should error")
	}
}

func TestDetectNegativeAndSigned(t *testing.T) {
	s := detect(t, "-1,+2\n-3,+4\n", DetectOptions{})
	if s.Columns[0].Type != Int64 || s.Columns[1].Type != Int64 {
		t.Errorf("signed ints misclassified: %v", s)
	}
}

func TestDetectFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.csv")
	if err := os.WriteFile(path, []byte("x,y\n1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Detect(path, DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasHeader || s.ColIndex("y") != 1 {
		t.Errorf("Detect file: %v header=%v", s, s.HasHeader)
	}
}

func TestColIndexCaseInsensitive(t *testing.T) {
	s := detect(t, "Alpha,Beta\n1,2\n", DetectOptions{})
	if s.ColIndex("alpha") != 0 || s.ColIndex("BETA") != 1 || s.ColIndex("nope") != -1 {
		t.Error("ColIndex lookup broken")
	}
}

func TestDetectRaggedRowsIgnored(t *testing.T) {
	// Rows with a deviating field count do not poison inference.
	s := detect(t, "1,2\n3,4\n5\n6,7\n", DetectOptions{})
	if s.NumCols() != 2 || s.Columns[0].Type != Int64 {
		t.Errorf("ragged row handling: %v", s)
	}
}

func TestDetectTruncatedTrailingLineDropped(t *testing.T) {
	// Simulates a sample window cutting a line: "99999" may be a prefix of
	// a longer field, so the incomplete line must not affect inference.
	content := "1,2\n3,4\n99999,str"
	s := detect(t, content, DetectOptions{})
	if s.Columns[1].Type != Int64 {
		t.Errorf("truncated line affected inference: %v", s)
	}
}

func TestSchemaString(t *testing.T) {
	s := detect(t, "1,2.5\n", DetectOptions{})
	str := s.String()
	if !strings.Contains(str, "a1 int64") || !strings.Contains(str, "a2 float64") {
		t.Errorf("String = %q", str)
	}
}

func TestTypeString(t *testing.T) {
	if Int64.String() != "int64" || Float64.String() != "float64" || String.String() != "string" {
		t.Error("Type.String misbehaves")
	}
	if Type(99).String() == "" {
		t.Error("unknown type should still render")
	}
}

func TestDetectNDJSON(t *testing.T) {
	s := detect(t, `{"id":1,"score":2.5,"name":"a"}
{"name":"b","id":2,"score":3,"extra":true}
`, DetectOptions{})
	if s.Format != scan.FormatNDJSON {
		t.Fatalf("Format = %v, want ndjson", s.Format)
	}
	want := []Column{
		{Name: "id", Type: Int64},
		{Name: "score", Type: Float64},
		{Name: "name", Type: String},
		{Name: "extra", Type: String},
	}
	if len(s.Columns) != len(want) {
		t.Fatalf("columns = %v, want %v", s.Columns, want)
	}
	for i, c := range s.Columns {
		if c != want[i] {
			t.Errorf("col %d = %v, want %v", i, c, want[i])
		}
	}
	if got := s.FieldNames(); got[0] != "id" || got[3] != "extra" {
		t.Errorf("FieldNames = %v", got)
	}
}

func TestDetectNDJSONTypeWidening(t *testing.T) {
	s := detect(t, `{"v":1}
{"v":2.5}
{"v":"three"}
`, DetectOptions{})
	if s.Format != scan.FormatNDJSON || len(s.Columns) != 1 || s.Columns[0].Type != String {
		t.Fatalf("schema = %v (format %v)", s.Columns, s.Format)
	}
}

func TestDetectCSVStaysCSV(t *testing.T) {
	s := detect(t, "1,2\n3,4\n", DetectOptions{})
	if s.Format != scan.FormatCSV {
		t.Fatalf("Format = %v, want csv", s.Format)
	}
}
